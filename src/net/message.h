#ifndef PAXI_NET_MESSAGE_H_
#define PAXI_NET_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "common/digest.h"
#include "common/pool.h"
#include "common/types.h"

namespace paxi {

class MessagePtr;
template <typename M, typename... Args>
MessagePtr MakeMessage(Args&&... args);

/// Base class for every message exchanged between nodes (and clients).
///
/// Protocol authors subclass this per message type, exactly like filling in
/// Paxi's shaded "Messages" module (paper Fig. 5). Dispatch at the receiver
/// is by dynamic type (Node::Register<T>), so no manual type tags are
/// needed. Messages are delivered as shared const pointers — a broadcast
/// shares one instance across receivers, so handlers must treat received
/// messages as immutable.
///
/// Allocation: messages are created ONLY through MakeMessage<M>() below,
/// which places them in the calling thread's BlockPool (common/pool.h) —
/// one free-list pop instead of a malloc + shared_ptr control block. The
/// determinism lint's message-alloc rule flags any raw new/make_shared of
/// a Message subclass. Sharing is intrusive: MessagePtr manipulates a
/// refcount inside the message. The count is deliberately NOT atomic —
/// a message lives inside one single-threaded simulation universe (the
/// PR 4 sweep architecture), so atomic refcounting would charge every
/// send, broadcast fan-out copy, and delivery capture for a concurrency
/// that cannot occur. Handing a message to another thread is safe only
/// as an ownership transfer with external synchronization (e.g. across a
/// SweepEngine join); the final release may then happen on any thread —
/// the pool routes it to the owner's remote-free stack.
struct Message {
  virtual ~Message() = default;

  /// Sender, stamped by the transport on send.
  NodeId from = NodeId::Invalid();

  /// Wire size in bytes. Used by the transport to charge NIC/bandwidth
  /// time (the s_m parameter of the paper's service-time model, §3.3).
  /// Default matches the paper's small-command workload.
  virtual std::size_t ByteSize() const { return 100; }

  /// Digest of the message's *payload* (not its dynamic type or sender —
  /// the model checker mixes those in itself). Two in-flight messages of
  /// the same type on the same link whose ContentDigests differ are
  /// different pending choices; the explorer's visited-state dedup is only
  /// as sound as this discrimination. The default covers field-less
  /// messages (pings, acks whose meaning is entirely their type+sender);
  /// any message carrying slots, ballots, or commands should override.
  virtual std::uint64_t ContentDigest() const { return 0; }

 private:
  friend class MessagePtr;
  template <typename M, typename... Args>
  friend MessagePtr MakeMessage(Args&&... args);

  /// Intrusive share count, mutated through const pointers (delivered
  /// messages are immutable payload-wise, but sharing them is not a
  /// payload mutation). Non-atomic by design — see the class comment.
  mutable std::uint32_t pool_refs_ = 0;
};

/// Shared const handle to a pooled Message — the delivery currency of the
/// transport and every Node. Replaces std::shared_ptr<const Message>:
/// 8 bytes instead of 16 in every event capture, non-atomic share/release,
/// and the final release returns the block to the BlockPool free list
/// instead of the heap.
class MessagePtr {
 public:
  constexpr MessagePtr() noexcept = default;
  constexpr MessagePtr(std::nullptr_t) noexcept {}  // NOLINT: like shared_ptr

  MessagePtr(const MessagePtr& other) noexcept : msg_(other.msg_) {
    if (msg_ != nullptr) ++msg_->pool_refs_;
  }

  MessagePtr(MessagePtr&& other) noexcept : msg_(other.msg_) {
    other.msg_ = nullptr;
  }

  MessagePtr& operator=(const MessagePtr& other) noexcept {
    MessagePtr copy(other);
    Swap(copy);
    return *this;
  }

  MessagePtr& operator=(MessagePtr&& other) noexcept {
    if (this != &other) {
      Reset();
      msg_ = other.msg_;
      other.msg_ = nullptr;
    }
    return *this;
  }

  ~MessagePtr() { Reset(); }

  const Message* get() const noexcept { return msg_; }
  const Message& operator*() const noexcept { return *msg_; }
  const Message* operator->() const noexcept { return msg_; }
  explicit operator bool() const noexcept { return msg_ != nullptr; }

  friend bool operator==(const MessagePtr& a, const MessagePtr& b) noexcept {
    return a.msg_ == b.msg_;
  }
  friend bool operator==(const MessagePtr& a, std::nullptr_t) noexcept {
    return a.msg_ == nullptr;
  }

  /// Share count, for tests (1 = sole owner).
  std::uint32_t use_count() const noexcept {
    return msg_ == nullptr ? 0 : msg_->pool_refs_;
  }

 private:
  template <typename M, typename... Args>
  friend MessagePtr MakeMessage(Args&&... args);

  /// Adopts a freshly pooled message whose refcount is already 1.
  explicit MessagePtr(const Message* adopted) noexcept : msg_(adopted) {}

  void Swap(MessagePtr& other) noexcept { std::swap(msg_, other.msg_); }

  void Reset() noexcept {
    if (msg_ != nullptr && --msg_->pool_refs_ == 0) {
      // Destroy in place, then hand the block back to its pool. The
      // payload address is the allocation address because Message is
      // every message's first (and only) base — checked in MakeMessage.
      void* block =
          const_cast<void*>(static_cast<const void*>(msg_));
      msg_->~Message();
      BlockPool::Release(block);
    }
    msg_ = nullptr;
  }

  const Message* msg_ = nullptr;
};

/// The pool entry point: constructs M in a BlockPool block and returns the
/// owning handle. This (plus the test-side copy in MakeMessage-converted
/// fixtures) is the only sanctioned way to create a Message — see the
/// determinism lint's message-alloc rule.
template <typename M, typename... Args>
MessagePtr MakeMessage(Args&&... args) {
  static_assert(std::is_base_of_v<Message, M>,
                "MakeMessage is for Message subclasses");
  static_assert(alignof(M) <= alignof(std::max_align_t),
                "pool blocks are max_align_t-aligned");
  void* mem = BlockPool::Local().Allocate(sizeof(M));
  M* m = ::new (mem) M(std::forward<Args>(args)...);
  // Single inheritance only: the Message subobject must sit at offset 0,
  // or Release would return a shifted pointer to the pool.
  const Message* base = m;
  PAXI_DCHECK(static_cast<const void*>(base) == mem);
  base->pool_refs_ = 1;
  return MessagePtr(base);
}

}  // namespace paxi

#endif  // PAXI_NET_MESSAGE_H_
