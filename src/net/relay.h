#ifndef PAXI_NET_RELAY_H_
#define PAXI_NET_RELAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/digest.h"
#include "common/types.h"
#include "net/message.h"

namespace paxi {

/// Modeled bytes of relay framing: envelope/ack-batch header (tag, origin,
/// counts) on top of the wrapped payload. Each subtree member listed in an
/// envelope adds kRelayMemberBytes of routing table.
constexpr std::size_t kRelayHeaderBytes = 20;
constexpr std::size_t kRelayMemberBytes = 8;

/// PigPaxos-style relay-tree broadcast (PAPERS.md, arXiv:2003.07760
/// "Scaling Strongly Consistent Replication"): instead of the leader
/// paying t_i for N-1 individual acks and NIC time for N-1 full copies,
/// it sends R envelopes to relays, each relay fans the payload out to its
/// subtree and aggregates the subtree's acks into one batch back to the
/// origin. The leader's per-round CPU drops from (N-1)·t_i to R·t_i —
/// which is exactly the term that makes flat Paxos collapse at N ≥ 9.
///
/// Wrapping happens at the transport layer of the node (core/node.cc
/// BroadcastShared / SendShared), below every protocol's handler table,
/// so all 8 protocols inherit relaying from one config knob
/// (`relay_fanout`). Caveat: a relayed broadcast takes a different path
/// per rotation, so cross-round per-link FIFO is not preserved — leave
/// relaying off for protocols that rely on ordered links (Mencius).
///
/// One envelope carrying the original message rides to each relay; the
/// relay re-wraps it (empty member list = "you are a leaf, ack via me")
/// for its members. Acks are captured: while a node dispatches a relayed
/// payload, sends addressed to the origin are diverted into the relay
/// ack channel instead of the transport. Relay crash tolerance comes
/// from rotation — every broadcast rotates the relay set, so a
/// retransmission after a dead relay reaches the lost subtree through a
/// different tree (and rotation also spreads the relay duty, keeping any
/// single follower from becoming the new bottleneck).
struct RelayEnvelope : Message {
  MessagePtr inner;
  /// The broadcasting node — where aggregated acks are owed.
  NodeId origin = NodeId::Invalid();
  /// Per-origin sequence number identifying this broadcast's ack round.
  std::uint64_t tag = 0;
  /// Subtree this relay serves; empty = leaf delivery.
  std::vector<NodeId> members;

  std::size_t ByteSize() const override {
    return kRelayHeaderBytes + (inner != nullptr ? inner->ByteSize() : 0) +
           kRelayMemberBytes * members.size();
  }

  std::uint64_t ContentDigest() const override {
    Digest d;
    d.Mix(0x52454c59u)  // "RELY": keep envelopes distinct from payloads
        .Mix(std::hash<NodeId>()(origin))
        .Mix(tag)
        .Mix(inner != nullptr ? inner->ContentDigest() : 0u)
        .Mix(static_cast<std::uint64_t>(members.size()));
    for (const NodeId& m : members) d.Mix(std::hash<NodeId>()(m));
    return d.value();
  }
};

/// Aggregated acks flowing back up a relay tree: leaf -> relay (one
/// member's captured replies) and relay -> origin (the whole subtree's).
/// The origin unwraps and dispatches each inner ack as if it had arrived
/// individually — but paid t_i once for the batch, which is the win.
struct RelayAckBatch : Message {
  NodeId origin = NodeId::Invalid();
  std::uint64_t tag = 0;
  std::vector<MessagePtr> acks;

  std::size_t ByteSize() const override {
    std::size_t bytes = kRelayHeaderBytes;
    for (const MessagePtr& ack : acks) bytes += ack->ByteSize();
    return bytes;
  }

  std::uint64_t ContentDigest() const override {
    Digest d;
    d.Mix(0x52414342u)  // "RACB"
        .Mix(std::hash<NodeId>()(origin))
        .Mix(tag)
        .Mix(static_cast<std::uint64_t>(acks.size()));
    for (const MessagePtr& ack : acks) d.Mix(ack->ContentDigest());
    return d.value();
  }
};

/// One relay subtree of a planned broadcast.
struct RelayTree {
  NodeId relay;
  std::vector<NodeId> members;
};

/// Deterministic relay-tree planner, configured per node from the
/// deployment params (`relay_fanout` R, 0 = off; `relay_ack_wait_us` for
/// the relay's partial-aggregation flush). Plan() is a pure function of
/// (targets, rotation): the rotation counter advances per broadcast, so
/// consecutive broadcasts use different relays — amortizing relay duty
/// and routing retransmissions around a crashed relay.
class RelayPolicy {
 public:
  RelayPolicy() = default;
  RelayPolicy(int fanout, Time ack_wait_us)
      : fanout_(fanout), ack_wait_us_(ack_wait_us) {}

  int fanout() const { return fanout_; }
  Time ack_wait_us() const { return ack_wait_us_; }

  /// Relaying engages only when it can help: at least one relay would
  /// serve a member beyond itself (otherwise the envelope is pure
  /// overhead over a direct broadcast).
  bool Engaged(std::size_t num_targets) const {
    return fanout_ > 0 && num_targets > static_cast<std::size_t>(fanout_) + 1;
  }

  /// Partitions `targets` into fanout() trees: after rotating the target
  /// list by `rotation`, the first R targets relay for the rest
  /// (round-robin assignment).
  std::vector<RelayTree> Plan(const std::vector<NodeId>& targets,
                              std::uint64_t rotation) const;

 private:
  int fanout_ = 0;
  Time ack_wait_us_ = 1000;
};

}  // namespace paxi

#endif  // PAXI_NET_RELAY_H_
