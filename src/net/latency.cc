#include "net/latency.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace paxi {
namespace {

// Loopback delay for messages a node sends to itself (e.g. a leader
// self-voting through the normal code path).
constexpr Time kLoopbackDelay = 1;  // 1 us

}  // namespace

TopologyLatencyModel::TopologyLatencyModel(Topology topology)
    : topology_(std::move(topology)) {}

Time TopologyLatencyModel::SampleOneWay(NodeId from, NodeId to,
                                        Rng& rng) const {
  if (from == to) return kLoopbackDelay;
  const double rtt_mean = topology_.RttMeanMs(from.zone, to.zone);
  const double rtt_sigma = topology_.RttSigmaMs(from.zone, to.zone);
  // One-way ~ Normal(rtt/2, sigma/sqrt(2)) so that the sum of the two
  // directions reproduces RTT ~ Normal(rtt, sigma).
  const double ms = rng.Normal(rtt_mean / 2.0, rtt_sigma / std::sqrt(2.0));
  const Time t = FromMillis(ms);
  return std::max<Time>(t, kLoopbackDelay);
}

Time TopologyLatencyModel::MeanOneWay(NodeId from, NodeId to) const {
  if (from == to) return kLoopbackDelay;
  return FromMillis(topology_.RttMeanMs(from.zone, to.zone) / 2.0);
}

}  // namespace paxi
