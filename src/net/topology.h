#ifndef PAXI_NET_TOPOLOGY_H_
#define PAXI_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace paxi {

/// Named deployment regions used throughout the paper's WAN evaluation:
/// N. Virginia, Ohio, California, Ireland, Japan (§5).
enum class Region { kVirginia = 0, kOhio, kCalifornia, kIreland, kJapan };

inline constexpr int kNumRegions = 5;

/// Short region tag, e.g. "VA".
const char* RegionName(Region r);

/// Describes where zones live and how far apart they are. A "zone" is the
/// unit nodes are assigned to (NodeId.zone, 1-based); in LAN deployments
/// all zones share one region, in WAN deployments zone i maps onto one of
/// the five AWS regions above.
class Topology {
 public:
  /// LAN topology: `zones` zones colocated in a single datacenter. RTTs
  /// between any two distinct nodes follow Normal(rtt_mean_ms, rtt_sigma_ms),
  /// the distribution the paper measured inside an AWS region (Fig. 3:
  /// mu = 0.4271 ms, sigma = 0.0476 ms).
  static Topology Lan(int zones, double rtt_mean_ms = 0.4271,
                      double rtt_sigma_ms = 0.0476);

  /// WAN topology over the paper's five AWS regions (zone i -> regions[i-1]).
  /// Inter-region RTT means come from `InterRegionRttMs`; intra-region pairs
  /// use the LAN distribution.
  static Topology Wan(const std::vector<Region>& regions);

  /// The paper's standard 5-region deployment: VA, OH, CA, IR, JP.
  static Topology WanFiveRegions();

  int num_zones() const { return static_cast<int>(zone_regions_.size()); }
  bool is_wan() const { return wan_; }

  /// Region hosting 1-based zone `zone`.
  Region ZoneRegion(int zone) const;

  /// Mean round-trip time between two zones, in milliseconds.
  double RttMeanMs(int zone_a, int zone_b) const;

  /// RTT standard deviation between two zones, in milliseconds. WAN links
  /// jitter proportionally to their mean; local links use the measured
  /// LAN sigma.
  double RttSigmaMs(int zone_a, int zone_b) const;

  /// Publicly documented AWS inter-region RTT means (milliseconds) used to
  /// calibrate the simulator; symmetric.
  static double InterRegionRttMs(Region a, Region b);

 private:
  Topology() = default;

  bool wan_ = false;
  std::vector<Region> zone_regions_;  // index = zone-1
  double lan_rtt_mean_ms_ = 0.4271;
  double lan_rtt_sigma_ms_ = 0.0476;
  double wan_jitter_fraction_ = 0.02;
};

}  // namespace paxi

#endif  // PAXI_NET_TOPOLOGY_H_
