#ifndef PAXI_NET_LATENCY_H_
#define PAXI_NET_LATENCY_H_

#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "net/topology.h"

namespace paxi {

/// Samples one-way network delays between nodes. One-way delays are drawn
/// so that the round trip of two independent one-way samples matches the
/// topology's RTT distribution: one-way ~ Normal(rtt_mean/2, rtt_sigma/sqrt2).
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way message delay from `from` to `to`, in virtual time.
  /// Never negative. Delay between a node and itself is zero CPU-wise but
  /// still gets a minimal loopback latency so event ordering stays sane.
  virtual Time SampleOneWay(NodeId from, NodeId to, Rng& rng) const = 0;

  /// Expected (mean) one-way delay, used by the analytic model and by
  /// protocols that rank peers by proximity (e.g. FPaxos thrifty quorums,
  /// WPaxos q2 zone selection).
  virtual Time MeanOneWay(NodeId from, NodeId to) const = 0;
};

/// Latency model backed by a Topology: intra-zone pairs use the LAN normal
/// distribution, inter-zone pairs the WAN matrix.
class TopologyLatencyModel : public LatencyModel {
 public:
  explicit TopologyLatencyModel(Topology topology);

  Time SampleOneWay(NodeId from, NodeId to, Rng& rng) const override;
  Time MeanOneWay(NodeId from, NodeId to) const override;

  const Topology& topology() const { return topology_; }

 private:
  Topology topology_;
};

/// Fixed-delay model (tests and deterministic examples).
class FixedLatencyModel : public LatencyModel {
 public:
  explicit FixedLatencyModel(Time one_way) : one_way_(one_way) {}

  Time SampleOneWay(NodeId, NodeId, Rng&) const override { return one_way_; }
  Time MeanOneWay(NodeId, NodeId) const override { return one_way_; }

 private:
  Time one_way_;
};

}  // namespace paxi

#endif  // PAXI_NET_LATENCY_H_
