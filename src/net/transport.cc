#include "net/transport.h"

#include <algorithm>

#include "common/check.h"

namespace paxi {

Transport::Transport(Simulator* sim,
                     std::shared_ptr<const LatencyModel> latency, bool ordered)
    : sim_(sim), latency_(std::move(latency)), ordered_(ordered) {
  PAXI_CHECK(sim_ != nullptr);
  PAXI_CHECK(latency_ != nullptr);
}

void Transport::Register(Endpoint* endpoint) {
  PAXI_CHECK(endpoint != nullptr);
  PAXI_CHECK(endpoint->id().valid());
  const bool inserted =
      endpoints_.emplace(endpoint->id(), endpoint).second;
  PAXI_CHECK(inserted, "duplicate endpoint id");
  (void)inserted;
}

void Transport::Unregister(NodeId id) {
  endpoints_.erase(id);
  // The node's connections die with it: drop FIFO watermarks for links
  // touching it, so endpoint churn (nemesis crash-restart cycles, client
  // turnover) cannot grow per-link state without bound. A restarted
  // incarnation speaks over new connections and starts fresh watermarks.
  last_arrival_.EraseIf([id](LinkKey key, Time) {
    return LinkFrom(key) == id || LinkTo(key) == id;
  });
}

void Transport::Send(NodeId to, MessagePtr msg, Time departure) {
  PAXI_CHECK(msg != nullptr);
  PAXI_CHECK(msg->from.valid(), "message must be stamped with a sender");
  ++messages_sent_;

  const Time now = sim_->Now();
  const LinkKey link = PackLink(msg->from, to);
  Time extra = 0;
  bool bypass_fifo = false;
  bool duplicate = false;
  // Fault handling costs one empty() branch when no faults are active —
  // the overwhelmingly common case for performance sweeps.
  if (!faults_.empty()) {
    if (LinkFault* f = faults_.Find(link); f != nullptr) {
      if (f->Expired(now)) {
        faults_.Erase(link);  // lazy GC: expired faults must not accumulate
      } else {
        if (now < f->drop_until) {
          ++messages_dropped_;
          ++counters_.dropped;
          return;
        }
        if (now < f->flaky_until && sim_->rng().Bernoulli(f->flaky_p)) {
          ++messages_dropped_;
          ++counters_.flaky_dropped;
          return;
        }
        if (now < f->slow_until && f->slow_extra > 0) {
          extra = sim_->rng().UniformInt(0, f->slow_extra);
          ++counters_.slowed;
        }
        if (now < f->reorder_until && sim_->rng().Bernoulli(f->reorder_p)) {
          bypass_fifo = true;
          if (f->reorder_extra > 0) {
            extra += sim_->rng().UniformInt(0, f->reorder_extra);
          }
          ++counters_.reordered;
        }
        duplicate =
            now < f->duplicate_until && sim_->rng().Bernoulli(f->duplicate_p);
      }
    }
  }

  if (endpoints_.find(to) == endpoints_.end()) {
    ++messages_dropped_;
    ++counters_.dead_letters;
    return;
  }

  const Time net = latency_->SampleOneWay(msg->from, to, sim_->rng());
  Time arrival = std::max(departure, now) + net + extra;
  if (ordered_ && !bypass_fifo) {
    // TCP-like per-link FIFO: an out-of-order sample is pushed behind the
    // previous delivery on the same link. A Reorder-fault message skips
    // both the clamp and the watermark update, so it can overtake
    // neighbors without delaying them.
    Time& watermark = last_arrival_[link];
    arrival = std::max(arrival, watermark);
    watermark = arrival;
  }

  if (duplicate) {
    // The copy shares the immutable message object (handlers never mutate
    // delivered messages) and takes an independently sampled extra hop, so
    // it surfaces after the original and out of FIFO order.
    ++counters_.duplicated;
    const Time redelivery =
        latency_->SampleOneWay(msg->from, to, sim_->rng());
    ScheduleDelivery(to, msg, arrival + redelivery);
  }
  ScheduleDelivery(to, std::move(msg), arrival);
}

bool Transport::DeliverNow(NodeId to, MessagePtr msg) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    ++messages_dropped_;
    ++counters_.dead_letters;
    return false;
  }
  it->second->Deliver(std::move(msg));
  return true;
}

void Transport::ScheduleDelivery(NodeId to, MessagePtr msg, Time arrival) {
  // Systematic-exploration choice point: a hook that claims the delivery
  // parks it, and the message leaves the event timeline entirely until the
  // explorer fires it via DeliverNow (or drops it as a modeled loss).
  if (SchedulerHook* hook = sim_->scheduler_hook(); hook != nullptr) {
    if (hook->InterceptDelivery(to, msg, arrival)) return;
  }
  sim_->At(arrival, [this, to, msg = std::move(msg)]() mutable {
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      // Destination went away (crash-restart window) while in flight.
      ++messages_dropped_;
      ++counters_.dead_letters;
      return;
    }
    it->second->Deliver(std::move(msg));
  });
}

void Transport::Drop(NodeId i, NodeId j, Time duration) {
  faults_[PackLink(i, j)].drop_until = sim_->Now() + duration;
}

void Transport::Slow(NodeId i, NodeId j, Time max_extra, Time duration) {
  LinkFault& f = faults_[PackLink(i, j)];
  f.slow_until = sim_->Now() + duration;
  f.slow_extra = max_extra;
}

void Transport::Flaky(NodeId i, NodeId j, double p, Time duration) {
  LinkFault& f = faults_[PackLink(i, j)];
  f.flaky_until = sim_->Now() + duration;
  f.flaky_p = p;
}

void Transport::Duplicate(NodeId i, NodeId j, double p, Time duration) {
  LinkFault& f = faults_[PackLink(i, j)];
  f.duplicate_until = sim_->Now() + duration;
  f.duplicate_p = p;
}

void Transport::Reorder(NodeId i, NodeId j, double p, Time max_extra,
                        Time duration) {
  LinkFault& f = faults_[PackLink(i, j)];
  f.reorder_until = sim_->Now() + duration;
  f.reorder_p = p;
  f.reorder_extra = max_extra;
}

void Transport::Partition(const std::vector<std::vector<NodeId>>& groups,
                          Time duration) {
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (std::size_t gj = 0; gj < groups.size(); ++gj) {
      if (gi == gj) continue;
      for (const NodeId a : groups[gi]) {
        for (const NodeId b : groups[gj]) {
          Drop(a, b, duration);
        }
      }
    }
  }
}

void Transport::PartitionDirected(const std::vector<NodeId>& from,
                                  const std::vector<NodeId>& to,
                                  Time duration) {
  for (const NodeId a : from) {
    for (const NodeId b : to) {
      if (a == b) continue;
      Drop(a, b, duration);
    }
  }
}

void Transport::Heal() { faults_.Clear(); }

std::size_t Transport::active_fault_count() {
  const Time now = sim_->Now();
  faults_.EraseIf(
      [now](LinkKey, const LinkFault& f) { return f.Expired(now); });
  return faults_.size();
}

}  // namespace paxi
