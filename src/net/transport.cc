#include "net/transport.h"

#include <algorithm>

#include "common/check.h"

namespace paxi {

Transport::Transport(Simulator* sim,
                     std::shared_ptr<const LatencyModel> latency, bool ordered)
    : sim_(sim), latency_(std::move(latency)), ordered_(ordered) {
  PAXI_CHECK(sim_ != nullptr);
  PAXI_CHECK(latency_ != nullptr);
}

void Transport::Register(Endpoint* endpoint) {
  PAXI_CHECK(endpoint != nullptr);
  PAXI_CHECK(endpoint->id().valid());
  const bool inserted =
      endpoints_.emplace(endpoint->id(), endpoint).second;
  PAXI_CHECK(inserted, "duplicate endpoint id");
  (void)inserted;
}

void Transport::Unregister(NodeId id) { endpoints_.erase(id); }

void Transport::Send(NodeId to, MessagePtr msg, Time departure) {
  PAXI_CHECK(msg != nullptr);
  PAXI_CHECK(msg->from.valid(), "message must be stamped with a sender");
  ++messages_sent_;

  const Link link{msg->from, to};
  Time extra = 0;
  if (auto it = faults_.find(link); it != faults_.end()) {
    LinkFault& f = it->second;
    const Time now = sim_->Now();
    if (now < f.drop_until) {
      ++messages_dropped_;
      return;
    }
    if (now < f.flaky_until && sim_->rng().Bernoulli(f.flaky_p)) {
      ++messages_dropped_;
      return;
    }
    if (now < f.slow_until && f.slow_extra > 0) {
      extra = sim_->rng().UniformInt(0, f.slow_extra);
    }
  }

  auto dest = endpoints_.find(to);
  if (dest == endpoints_.end()) {
    ++messages_dropped_;
    return;
  }

  const Time net = latency_->SampleOneWay(msg->from, to, sim_->rng());
  Time arrival = std::max(departure, sim_->Now()) + net + extra;
  if (ordered_) {
    // TCP-like per-link FIFO: an out-of-order sample is pushed behind the
    // previous delivery on the same link.
    Time& watermark = last_arrival_[link];
    arrival = std::max(arrival, watermark);
    watermark = arrival;
  }

  Endpoint* endpoint = dest->second;
  sim_->At(arrival, [endpoint, msg = std::move(msg)]() mutable {
    endpoint->Deliver(std::move(msg));
  });
}

void Transport::Drop(NodeId i, NodeId j, Time duration) {
  faults_[{i, j}].drop_until = sim_->Now() + duration;
}

void Transport::Slow(NodeId i, NodeId j, Time max_extra, Time duration) {
  LinkFault& f = faults_[{i, j}];
  f.slow_until = sim_->Now() + duration;
  f.slow_extra = max_extra;
}

void Transport::Flaky(NodeId i, NodeId j, double p, Time duration) {
  LinkFault& f = faults_[{i, j}];
  f.flaky_until = sim_->Now() + duration;
  f.flaky_p = p;
}

}  // namespace paxi
