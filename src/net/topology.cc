#include "net/topology.h"

#include "common/check.h"

namespace paxi {
namespace {

// Symmetric inter-region RTT means in milliseconds, calibrated to public
// AWS measurements for us-east-1 (VA), us-east-2 (OH), us-west-1 (CA),
// eu-west-1 (IR) and ap-northeast-1 (JP). Order matches enum Region.
constexpr double kRttMs[kNumRegions][kNumRegions] = {
    //  VA     OH     CA     IR     JP
    {0.43, 11.0, 61.0, 75.0, 160.0},   // VA
    {11.0, 0.43, 50.0, 86.0, 156.0},   // OH
    {61.0, 50.0, 0.43, 140.0, 107.0},  // CA
    {75.0, 86.0, 140.0, 0.43, 220.0},  // IR
    {160.0, 156.0, 107.0, 220.0, 0.43},  // JP
};

}  // namespace

const char* RegionName(Region r) {
  switch (r) {
    case Region::kVirginia:
      return "VA";
    case Region::kOhio:
      return "OH";
    case Region::kCalifornia:
      return "CA";
    case Region::kIreland:
      return "IR";
    case Region::kJapan:
      return "JP";
  }
  return "??";
}

Topology Topology::Lan(int zones, double rtt_mean_ms, double rtt_sigma_ms) {
  PAXI_CHECK(zones > 0);
  Topology t;
  t.wan_ = false;
  t.zone_regions_.assign(static_cast<std::size_t>(zones), Region::kVirginia);
  t.lan_rtt_mean_ms_ = rtt_mean_ms;
  t.lan_rtt_sigma_ms_ = rtt_sigma_ms;
  return t;
}

Topology Topology::Wan(const std::vector<Region>& regions) {
  PAXI_CHECK(!regions.empty());
  Topology t;
  t.wan_ = true;
  t.zone_regions_ = regions;
  return t;
}

Topology Topology::WanFiveRegions() {
  return Wan({Region::kVirginia, Region::kOhio, Region::kCalifornia,
              Region::kIreland, Region::kJapan});
}

Region Topology::ZoneRegion(int zone) const {
  PAXI_CHECK(zone >= 1 && zone <= num_zones());
  return zone_regions_[static_cast<std::size_t>(zone - 1)];
}

double Topology::RttMeanMs(int zone_a, int zone_b) const {
  const Region ra = ZoneRegion(zone_a);
  const Region rb = ZoneRegion(zone_b);
  if (ra == rb) return lan_rtt_mean_ms_;
  return InterRegionRttMs(ra, rb);
}

double Topology::RttSigmaMs(int zone_a, int zone_b) const {
  const Region ra = ZoneRegion(zone_a);
  const Region rb = ZoneRegion(zone_b);
  if (ra == rb) return lan_rtt_sigma_ms_;
  return InterRegionRttMs(ra, rb) * wan_jitter_fraction_;
}

double Topology::InterRegionRttMs(Region a, Region b) {
  return kRttMs[static_cast<int>(a)][static_cast<int>(b)];
}

}  // namespace paxi
