#ifndef PAXI_NET_LINK_MAP_H_
#define PAXI_NET_LINK_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace paxi {

/// A directed link packed into 64 bits: 16 bits each for from.zone,
/// from.node, to.zone, to.node. Zones and node indices are small (clients
/// sit at node >= 1000, still far below 2^16); the pack is checked in
/// debug builds. Valid NodeIds have zone >= 1 and node >= 1, so a packed
/// key is never 0 — LinkMap uses 0 as its empty-slot sentinel.
using LinkKey = std::uint64_t;

inline LinkKey PackLink(NodeId from, NodeId to) {
  PAXI_DCHECK(from.valid() && to.valid());
  PAXI_DCHECK(from.zone < 0x10000 && from.node < 0x10000 &&
              to.zone < 0x10000 && to.node < 0x10000);
  return (static_cast<LinkKey>(static_cast<std::uint16_t>(from.zone)) << 48) |
         (static_cast<LinkKey>(static_cast<std::uint16_t>(from.node)) << 32) |
         (static_cast<LinkKey>(static_cast<std::uint16_t>(to.zone)) << 16) |
         static_cast<LinkKey>(static_cast<std::uint16_t>(to.node));
}

inline NodeId LinkFrom(LinkKey key) {
  return NodeId{static_cast<std::int32_t>((key >> 48) & 0xffff),
                static_cast<std::int32_t>((key >> 32) & 0xffff)};
}

inline NodeId LinkTo(LinkKey key) {
  return NodeId{static_cast<std::int32_t>((key >> 16) & 0xffff),
                static_cast<std::int32_t>(key & 0xffff)};
}

/// Open-addressing hash map from LinkKey to V, replacing the
/// std::map<pair<NodeId,NodeId>, V> the transport used on its per-message
/// path. Each message send did two red-black-tree walks (fault lookup +
/// FIFO watermark); this is one hash and a short linear probe over a flat
/// array — and the map is small (links of a <100-node cluster), so the
/// probe sequence stays in cache.
///
/// Deliberately minimal: keys are nonzero uint64 (0 = empty sentinel),
/// erase uses backward-shift deletion (no tombstones), iteration order is
/// a deterministic function of the insert/erase sequence — nothing about
/// it depends on pointers or allocation addresses, which keeps simulations
/// byte-replayable.
template <typename V>
class LinkMap {
 public:
  LinkMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    slots_.clear();
    size_ = 0;
    mask_ = 0;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  V* Find(LinkKey key) {
    if (size_ == 0) return nullptr;
    for (std::size_t i = Hash(key) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == 0) return nullptr;
    }
  }
  const V* Find(LinkKey key) const {
    return const_cast<LinkMap*>(this)->Find(key);
  }

  /// Value for `key`, default-constructed and inserted if absent.
  V& operator[](LinkKey key) {
    PAXI_DCHECK(key != 0);
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) Grow();
    for (std::size_t i = Hash(key) & mask_;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == 0) {
        s.key = key;
        s.value = V{};
        ++size_;
        return s.value;
      }
    }
  }

  /// Removes `key` if present; returns whether it was. Backward-shift
  /// deletion: subsequent probe-chain entries are moved back so lookups
  /// never cross a hole.
  bool Erase(LinkKey key) {
    if (size_ == 0) return false;
    std::size_t i = Hash(key) & mask_;
    for (;; i = (i + 1) & mask_) {
      if (slots_[i].key == key) break;
      if (slots_[i].key == 0) return false;
    }
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_; slots_[j].key != 0;
         j = (j + 1) & mask_) {
      const std::size_t home = Hash(slots_[j].key) & mask_;
      // Move j back into the hole unless j lives in the (cyclic) probe
      // interval (hole, j] — i.e. unless its home position is after the
      // hole, in which case shifting it would break its own chain.
      const bool home_in_gap =
          hole <= j ? (hole < home && home <= j)
                    : (home > hole || home <= j);
      if (!home_in_gap) {
        slots_[hole] = std::move(slots_[j]);
        slots_[j].key = 0;
        slots_[j].value = V{};
        hole = j;
      }
    }
    slots_[hole].key = 0;
    slots_[hole].value = V{};
    --size_;
    return true;
  }

  /// Calls fn(key, value&) for every entry. Do not mutate the map inside.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

  /// Erases every entry for which pred(key, value) holds; returns how many.
  template <typename Pred>
  std::size_t EraseIf(Pred&& pred) {
    std::vector<LinkKey> doomed;
    for (Slot& s : slots_) {
      if (s.key != 0 && pred(s.key, s.value)) doomed.push_back(s.key);
    }
    for (LinkKey key : doomed) Erase(key);
    return doomed.size();
  }

 private:
  struct Slot {
    LinkKey key = 0;
    V value{};
  };

  /// splitmix64 finalizer: packed keys differ only in low/structured bits,
  /// this spreads them over the table.
  static std::size_t Hash(LinkKey key) {
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  void Grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != 0) (*this)[s.key] = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace paxi

#endif  // PAXI_NET_LINK_MAP_H_
