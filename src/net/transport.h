#ifndef PAXI_NET_TRANSPORT_H_
#define PAXI_NET_TRANSPORT_H_

#include <cstddef>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/types.h"
#include "net/latency.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace paxi {

/// Anything that can receive messages: replicas and clients.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual NodeId id() const = 0;

  /// Invoked by the transport at the message's arrival time (the event's
  /// virtual time is the arrival instant). The endpoint is responsible for
  /// modeling its own processing/queueing delay before handling.
  virtual void Deliver(MessagePtr msg) = 0;
};

/// Message fabric between endpoints, the counterpart of Paxi's networking
/// module (§4.1). Delivery latency comes from a LatencyModel; per-link
/// ordering emulates TCP (default) or can be disabled for UDP-like
/// semantics. Implements the paper's failure-injection primitives
/// Drop / Slow / Flaky (§4.2); Crash is a node-side freeze, see
/// Node::Crash.
class Transport {
 public:
  Transport(Simulator* sim, std::shared_ptr<const LatencyModel> latency,
            bool ordered = true);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers an endpoint; its id must be unique. Not owned.
  void Register(Endpoint* endpoint);
  void Unregister(NodeId id);

  /// Sends `msg` (whose `from` field must already be stamped) to `to`.
  /// `departure` is the virtual time the message clears the sender's NIC;
  /// network latency is added on top. Unknown destinations are counted as
  /// drops (a crashed-forever or not-yet-started node).
  void Send(NodeId to, MessagePtr msg, Time departure);

  /// Drops every message from `i` to `j` for the next `duration`.
  void Drop(NodeId i, NodeId j, Time duration);

  /// Delays each message from `i` to `j` by an extra uniform random amount
  /// in [0, max_extra] for the next `duration`.
  void Slow(NodeId i, NodeId j, Time max_extra, Time duration);

  /// Drops each message from `i` to `j` with probability `p` for the next
  /// `duration`.
  void Flaky(NodeId i, NodeId j, double p, Time duration);

  const LatencyModel& latency() const { return *latency_; }
  Simulator* sim() const { return sim_; }

  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t messages_dropped() const { return messages_dropped_; }

 private:
  struct LinkFault {
    Time drop_until = 0;
    Time slow_until = 0;
    Time slow_extra = 0;
    Time flaky_until = 0;
    double flaky_p = 0.0;
  };

  using Link = std::pair<NodeId, NodeId>;

  Simulator* sim_;
  std::shared_ptr<const LatencyModel> latency_;
  bool ordered_;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::map<Link, LinkFault> faults_;
  std::map<Link, Time> last_arrival_;  // per-link FIFO watermark (TCP mode)
  std::size_t messages_sent_ = 0;
  std::size_t messages_dropped_ = 0;
};

}  // namespace paxi

#endif  // PAXI_NET_TRANSPORT_H_
