#ifndef PAXI_NET_TRANSPORT_H_
#define PAXI_NET_TRANSPORT_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "net/latency.h"
#include "net/link_map.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace paxi {

/// Anything that can receive messages: replicas and clients.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual NodeId id() const = 0;

  /// Invoked by the transport at the message's arrival time (the event's
  /// virtual time is the arrival instant). The endpoint is responsible for
  /// modeling its own processing/queueing delay before handling.
  virtual void Deliver(MessagePtr msg) = 0;
};

/// Message fabric between endpoints, the counterpart of Paxi's networking
/// module (§4.1). Delivery latency comes from a LatencyModel; per-link
/// ordering emulates TCP (default) or can be disabled for UDP-like
/// semantics. Implements the paper's failure-injection primitives
/// Drop / Slow / Flaky (§4.2) plus cluster-level Partition, message
/// Duplicate and bounded Reorder; Crash is a node-side freeze, see
/// Node::Crash and Cluster::RestartNode.
///
/// Delivery is late-bound: the destination endpoint is looked up at the
/// arrival instant, not at send time, so a message in flight to a node
/// that is unregistered (down) or replaced (amnesia restart) is dropped
/// or delivered to the current incarnation — never to a stale pointer.
class Transport {
 public:
  /// Per-fault counters, for tests and fault-injection telemetry.
  struct FaultCounters {
    std::size_t dropped = 0;        ///< Hard Drop / Partition casualties.
    std::size_t flaky_dropped = 0;  ///< Probabilistic (Flaky) drops.
    std::size_t slowed = 0;         ///< Messages that got Slow extra delay.
    std::size_t duplicated = 0;     ///< Extra copies injected by Duplicate.
    std::size_t reordered = 0;      ///< Messages that bypassed FIFO order.
    std::size_t dead_letters = 0;   ///< Destination unknown at send/arrival.
  };

  Transport(Simulator* sim, std::shared_ptr<const LatencyModel> latency,
            bool ordered = true);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Registers an endpoint; its id must be unique. Not owned.
  void Register(Endpoint* endpoint);
  /// Unregisters `id` and garbage-collects per-link transport state (FIFO
  /// watermarks) touching it: the links' connections are gone, and long
  /// fault-injection runs with churning endpoints must not accumulate
  /// watermark entries for nodes that no longer exist.
  void Unregister(NodeId id);
  bool IsRegistered(NodeId id) const {
    return endpoints_.find(id) != endpoints_.end();
  }

  /// Sends `msg` (whose `from` field must already be stamped) to `to`.
  /// `departure` is the virtual time the message clears the sender's NIC;
  /// network latency is added on top. Unknown destinations are counted as
  /// drops (a crashed-forever or not-yet-started node).
  void Send(NodeId to, MessagePtr msg, Time departure);

  /// Delivers `msg` to `to` immediately (at the current virtual time),
  /// with the usual late-bound endpoint lookup — an unregistered
  /// destination is a dead letter. This is the firing half of the
  /// SchedulerHook choice-point API (sim/simulator.h): the explorer parks
  /// intercepted deliveries and releases them through here in whatever
  /// order it is exploring. Returns false on a dead letter.
  bool DeliverNow(NodeId to, MessagePtr msg);

  /// Drops every message from `i` to `j` for the next `duration`.
  void Drop(NodeId i, NodeId j, Time duration);

  /// Delays each message from `i` to `j` by an extra uniform random amount
  /// in [0, max_extra] for the next `duration`.
  void Slow(NodeId i, NodeId j, Time max_extra, Time duration);

  /// Drops each message from `i` to `j` with probability `p` for the next
  /// `duration`.
  void Flaky(NodeId i, NodeId j, double p, Time duration);

  /// Delivers an extra copy of each message from `i` to `j` with
  /// probability `p` for the next `duration`. The copy takes an
  /// independently sampled network hop after the original's arrival and
  /// bypasses the FIFO watermark (a retransmitted TCP segment surfacing
  /// after reconnect, or a genuinely duplicated UDP datagram).
  void Duplicate(NodeId i, NodeId j, double p, Time duration);

  /// With probability `p`, a message from `i` to `j` bypasses per-link
  /// FIFO ordering and picks up an extra uniform delay in [0, max_extra],
  /// so it can overtake or fall behind its neighbors — bounded reordering.
  void Reorder(NodeId i, NodeId j, double p, Time max_extra, Time duration);

  /// Symmetric cluster partition: nodes in different `groups` cannot
  /// exchange messages (both directions cut) for `duration`. Nodes not
  /// listed in any group are unaffected. Built on per-link Drop, so the
  /// partition expires on its own and composes with other faults.
  void Partition(const std::vector<std::vector<NodeId>>& groups,
                 Time duration);

  /// Asymmetric partition: every link from a node in `from` to a node in
  /// `to` is cut for `duration`; the reverse direction stays up.
  void PartitionDirected(const std::vector<NodeId>& from,
                         const std::vector<NodeId>& to, Time duration);

  /// Clears every active link fault (partitions included) immediately.
  /// FIFO watermarks and counters are untouched.
  void Heal();

  /// Number of links with at least one unexpired fault. Prunes expired
  /// entries first (they are also garbage-collected lazily on Send).
  std::size_t active_fault_count();

  const LatencyModel& latency() const { return *latency_; }
  Simulator* sim() const { return sim_; }

  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t messages_dropped() const { return messages_dropped_; }
  std::size_t messages_duplicated() const { return counters_.duplicated; }
  std::size_t messages_reordered() const { return counters_.reordered; }
  const FaultCounters& fault_counters() const { return counters_; }

 private:
  struct LinkFault {
    Time drop_until = 0;
    Time slow_until = 0;
    Time slow_extra = 0;
    Time flaky_until = 0;
    double flaky_p = 0.0;
    Time duplicate_until = 0;
    double duplicate_p = 0.0;
    Time reorder_until = 0;
    double reorder_p = 0.0;
    Time reorder_extra = 0;

    bool Expired(Time now) const {
      return now >= drop_until && now >= slow_until && now >= flaky_until &&
             now >= duplicate_until && now >= reorder_until;
    }
  };

  /// Schedules a late-bound delivery: the endpoint lookup happens when the
  /// event fires, so restarts/unregistrations in flight are safe.
  void ScheduleDelivery(NodeId to, MessagePtr msg, Time arrival);

  Simulator* sim_;
  std::shared_ptr<const LatencyModel> latency_;
  bool ordered_;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  /// Per-link state lives in flat hash maps keyed on the packed 64-bit
  /// (from,to) link (net/link_map.h); the previous std::map cost two tree
  /// walks on every message. The fault map is empty in the common
  /// (fault-free) case, so Send's fault handling reduces to one branch.
  LinkMap<LinkFault> faults_;
  LinkMap<Time> last_arrival_;  // per-link FIFO watermark (TCP mode)
  std::size_t messages_sent_ = 0;
  std::size_t messages_dropped_ = 0;
  FaultCounters counters_;
};

}  // namespace paxi

#endif  // PAXI_NET_TRANSPORT_H_
