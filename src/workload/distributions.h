#ifndef PAXI_WORKLOAD_DISTRIBUTIONS_H_
#define PAXI_WORKLOAD_DISTRIBUTIONS_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace paxi {

/// Draws keys from a pool of `k` records — the key-popularity
/// distributions of Fig. 6 (uniform, zipfian, normal, exponential), with
/// the Table 3 parameters.
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;

  /// A key in [min_key, min_key + k). `now` lets time-varying
  /// distributions (the "moving" normal) shift their center.
  virtual Key Next(Rng& rng, Time now) = 0;
};

/// Uniform over the pool.
class UniformKeys : public KeyDistribution {
 public:
  UniformKeys(Key min_key, std::int64_t k);
  Key Next(Rng& rng, Time now) override;

 private:
  Key min_key_;
  std::int64_t k_;
};

/// Zipfian with skew `s` and shift `v` (Table 3: Zipfian_s, Zipfian_v).
class ZipfianKeys : public KeyDistribution {
 public:
  ZipfianKeys(Key min_key, std::int64_t k, double s, double v);
  Key Next(Rng& rng, Time now) override;

 private:
  Key min_key_;
  std::int64_t k_;
  double s_;
  double v_;
};

/// Normal around `mu` with deviation `sigma`, clamped to the pool; when
/// `move` is set, mu advances by one key every `speed_ms` milliseconds
/// (Table 3: Mu, Sigma, Move, Speed) — the drifting locality workload.
class NormalKeys : public KeyDistribution {
 public:
  NormalKeys(Key min_key, std::int64_t k, double mu, double sigma,
             bool move = false, double speed_ms = 500.0);
  Key Next(Rng& rng, Time now) override;

 private:
  Key min_key_;
  std::int64_t k_;
  double mu_;
  double sigma_;
  bool move_;
  double speed_ms_;
};

/// Exponentially decaying popularity from the lowest key.
class ExponentialKeys : public KeyDistribution {
 public:
  ExponentialKeys(Key min_key, std::int64_t k, double rate);
  Key Next(Rng& rng, Time now) override;

 private:
  Key min_key_;
  std::int64_t k_;
  double rate_;
};

/// Builds a distribution by Table 3 name: "uniform", "zipfian", "normal",
/// "exponential". Unknown names fall back to uniform.
std::unique_ptr<KeyDistribution> MakeDistribution(
    const std::string& name, Key min_key, std::int64_t k, double mu,
    double sigma, bool move, double speed_ms, double zipf_s, double zipf_v);

}  // namespace paxi

#endif  // PAXI_WORKLOAD_DISTRIBUTIONS_H_
