#include "workload/workload.h"

#include "common/check.h"

namespace paxi {

WorkloadSpec UniformWorkload(std::int64_t keys, double write_ratio) {
  WorkloadSpec spec;
  spec.keys = keys;
  spec.write_ratio = write_ratio;
  spec.distribution = "uniform";
  return spec;
}

WorkloadSpec ConflictWorkload(double conflict_ratio, int zones,
                              std::int64_t keys_per_zone) {
  WorkloadSpec spec;
  spec.keys = keys_per_zone;
  spec.write_ratio = 1.0;  // conflicting ops must interfere, so write
  spec.distribution = "uniform";
  spec.conflict_mode = true;
  spec.conflict_ratio = conflict_ratio;
  spec.conflict_key = 0;
  spec.zones = zones;
  return spec;
}

WorkloadSpec LocalityWorkload(int zones, std::int64_t keys, double sigma) {
  WorkloadSpec spec;
  spec.keys = keys;
  spec.write_ratio = 0.5;
  spec.distribution = "normal";
  spec.sigma = sigma;
  spec.locality_mode = true;
  spec.zones = zones;
  return spec;
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, int zone, int stream,
                                     std::uint64_t seed)
    : spec_(std::move(spec)), zone_(zone), stream_(stream), rng_(seed) {
  PAXI_CHECK(zone_ >= 1);
  double mu = spec_.mu;
  Key min_key = spec_.min_key;
  if (spec_.locality_mode) {
    // Zone z's accesses center on its own segment of the common pool
    // (Fig. 6): mu_z = (z - 1/2) * K / Z, overlap controlled by sigma.
    mu = (static_cast<double>(zone_) - 0.5) *
         static_cast<double>(spec_.keys) / spec_.zones;
  }
  if (spec_.conflict_mode) {
    // Private per-zone range; key 0 (conflict_key) is the shared hot key.
    min_key = static_cast<Key>(zone_) * 1'000'000;
  }
  dist_ = MakeDistribution(spec_.distribution, min_key, spec_.keys, mu,
                           spec_.sigma, spec_.move, spec_.speed_ms,
                           spec_.zipfian_s, spec_.zipfian_v);
}

Key WorkloadGenerator::NextKey(Time now) {
  if (spec_.conflict_mode && rng_.Bernoulli(spec_.conflict_ratio)) {
    return spec_.conflict_key;
  }
  return dist_->Next(rng_, now);
}

Command WorkloadGenerator::Next(Time now) {
  Command cmd;
  cmd.key = NextKey(now);
  if (rng_.Bernoulli(spec_.write_ratio)) {
    cmd.op = Command::Op::kPut;
    // Unique value per write stream: the linearizability checker relies
    // on value uniqueness to map reads back to writes.
    cmd.value = "z" + std::to_string(zone_) + "s" + std::to_string(stream_) +
                "-w" + std::to_string(++write_seq_);
  } else {
    cmd.op = Command::Op::kGet;
  }
  return cmd;
}

}  // namespace paxi
