#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace paxi {

UniformKeys::UniformKeys(Key min_key, std::int64_t k)
    : min_key_(min_key), k_(k) {
  PAXI_CHECK(k_ > 0);
}

Key UniformKeys::Next(Rng& rng, Time) {
  return min_key_ + rng.UniformInt(0, k_ - 1);
}

ZipfianKeys::ZipfianKeys(Key min_key, std::int64_t k, double s, double v)
    : min_key_(min_key), k_(k), s_(s), v_(v) {
  PAXI_CHECK(k_ > 0);
}

Key ZipfianKeys::Next(Rng& rng, Time) {
  return min_key_ + rng.Zipf(k_, s_, v_);
}

NormalKeys::NormalKeys(Key min_key, std::int64_t k, double mu, double sigma,
                       bool move, double speed_ms)
    : min_key_(min_key), k_(k), mu_(mu), sigma_(sigma), move_(move),
      speed_ms_(speed_ms) {
  PAXI_CHECK(k_ > 0);
}

Key NormalKeys::Next(Rng& rng, Time now) {
  double mu = mu_;
  if (move_) {
    // The mean drifts one record every speed_ms, wrapping around the pool
    // (Paxi's "moving average" workload).
    mu += std::fmod(ToMillis(now) / speed_ms_, static_cast<double>(k_));
  }
  const double x = rng.Normal(mu, sigma_);
  auto key = static_cast<std::int64_t>(std::llround(x));
  key %= k_;
  if (key < 0) key += k_;
  return min_key_ + key;
}

ExponentialKeys::ExponentialKeys(Key min_key, std::int64_t k, double rate)
    : min_key_(min_key), k_(k), rate_(rate) {
  PAXI_CHECK(k_ > 0);
  PAXI_CHECK(rate_ > 0.0);
}

Key ExponentialKeys::Next(Rng& rng, Time) {
  const auto key = static_cast<std::int64_t>(rng.Exponential(rate_));
  return min_key_ + std::min(key, k_ - 1);
}

std::unique_ptr<KeyDistribution> MakeDistribution(
    const std::string& name, Key min_key, std::int64_t k, double mu,
    double sigma, bool move, double speed_ms, double zipf_s, double zipf_v) {
  if (name == "zipfian") {
    return std::make_unique<ZipfianKeys>(min_key, k, zipf_s, zipf_v);
  }
  if (name == "normal") {
    return std::make_unique<NormalKeys>(min_key, k, mu, sigma, move,
                                        speed_ms);
  }
  if (name == "exponential") {
    // Rate chosen so ~95% of the mass falls inside the pool.
    return std::make_unique<ExponentialKeys>(min_key, k,
                                             3.0 / static_cast<double>(k));
  }
  return std::make_unique<UniformKeys>(min_key, k);
}

}  // namespace paxi
