#ifndef PAXI_WORKLOAD_WORKLOAD_H_
#define PAXI_WORKLOAD_WORKLOAD_H_

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "store/command.h"
#include "workload/distributions.h"

namespace paxi {

/// Workload definition, mirroring the Paxi benchmark parameters of
/// Table 3 plus the WAN conflict/locality experiment setups of §5.3.
struct WorkloadSpec {
  /// Total number of keys (K).
  std::int64_t keys = 1000;
  /// Write ratio (W). 0.5 = the paper's LAN experiments.
  double write_ratio = 0.5;
  /// Key distribution: "uniform", "zipfian", "normal", "exponential".
  std::string distribution = "uniform";
  Key min_key = 0;

  // Normal-distribution parameters (Table 3).
  double mu = 0.0;
  double sigma = 60.0;
  bool move = false;
  double speed_ms = 500.0;

  // Zipfian parameters (Table 3).
  double zipfian_s = 2.0;
  double zipfian_v = 1.0;

  /// Conflict-workload mode (§5.3, Fig. 11): with probability
  /// `conflict_ratio` the request targets the designated hot key
  /// (`conflict_key`); otherwise it draws from a per-zone private key
  /// range, so only hot-key accesses interfere across zones.
  bool conflict_mode = false;
  double conflict_ratio = 0.0;
  Key conflict_key = 0;

  /// Locality-workload mode (§5.3, Fig. 13): each zone draws keys from a
  /// Normal centered on its own segment of the shared pool; `sigma`
  /// controls the inter-zone overlap (the locality l).
  bool locality_mode = false;
  int zones = 1;
};

/// Canned specs for the paper's experiments.
WorkloadSpec UniformWorkload(std::int64_t keys = 1000,
                             double write_ratio = 0.5);
WorkloadSpec ConflictWorkload(double conflict_ratio, int zones,
                              std::int64_t keys_per_zone = 1000);
WorkloadSpec LocalityWorkload(int zones, std::int64_t keys = 1000,
                              double sigma = 60.0);

/// Generates commands for clients, one generator per (zone, client
/// stream). Thread-free: driven by the benchmark runner on the simulator
/// timeline.
class WorkloadGenerator {
 public:
  /// `stream` distinguishes concurrent generators (e.g. one per client)
  /// so written values stay globally unique.
  WorkloadGenerator(WorkloadSpec spec, int zone, int stream,
                    std::uint64_t seed);

  /// Next command (key + op) at virtual time `now`. The client/request
  /// ids are filled in by the issuing Client.
  Command Next(Time now);

  const WorkloadSpec& spec() const { return spec_; }

 private:
  Key NextKey(Time now);

  WorkloadSpec spec_;
  int zone_;
  int stream_;
  Rng rng_;
  std::unique_ptr<KeyDistribution> dist_;
  std::int64_t write_seq_ = 0;
};

}  // namespace paxi

#endif  // PAXI_WORKLOAD_WORKLOAD_H_
