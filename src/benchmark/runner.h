#ifndef PAXI_BENCHMARK_RUNNER_H_
#define PAXI_BENCHMARK_RUNNER_H_

#include <functional>
#include <map>
#include <vector>

#include "checker/linearizability.h"
#include "common/stats.h"
#include "core/cluster.h"
#include "fault/telemetry.h"
#include "workload/workload.h"

namespace paxi {

/// Benchmark run options — the harness side of Table 3. Clients are
/// closed-loop: each issues its next command as soon as the previous one
/// completes, so raising `clients_per_zone` raises offered load, which is
/// how the paper pushes systems to saturation (§4.2 Performance).
struct BenchOptions {
  WorkloadSpec workload;
  /// Concurrency per zone.
  int clients_per_zone = 1;
  /// Zones that host clients; empty = every zone.
  std::vector<int> client_zones;
  /// Virtual seconds to run before traffic (leader election, ownership
  /// settling).
  double bootstrap_s = 0.5;
  /// Virtual seconds of traffic excluded from measurement (ownership
  /// migration, cache warmup).
  double warmup_s = 1.0;
  /// Measured window in virtual seconds (T of Table 3).
  double duration_s = 5.0;
  /// Collect per-op records for the linearizability checker.
  bool record_ops = false;
  /// Optional availability telemetry sink (fault/telemetry.h): every reply
  /// — including warmup/bootstrap-era and failed ones — is recorded, and
  /// the tracker is finalized at the measurement deadline. Not owned; must
  /// outlive the run.
  AvailabilityTracker* availability = nullptr;
};

/// Outcome of one benchmark run.
struct BenchResult {
  double throughput = 0.0;  ///< Completed ops/s over the measured window.
  Sampler latency_ms;       ///< Latencies of measured ops, milliseconds.
  std::map<int, Sampler> zone_latency_ms;
  std::size_t completed = 0;
  std::size_t errors = 0;   ///< TimedOut / Unavailable replies.
  std::size_t not_found = 0;
  std::vector<OpRecord> ops;  ///< When record_ops is set.
  /// Messages processed per replica over the whole run — the "busiest
  /// node" data behind the §6.1 load analysis.
  std::map<NodeId, std::size_t> node_messages;
  /// Simulator events executed over the whole run (bootstrap + traffic +
  /// grace). The denominator for the perf lane's allocs_per_event.
  std::size_t events = 0;

  double MeanLatencyMs() const { return latency_ms.mean(); }
  double MedianLatencyMs() const { return latency_ms.Percentile(50); }
  double P99LatencyMs() const { return latency_ms.Percentile(99); }
};

/// Drives closed-loop clients against a cluster on the virtual timeline
/// and aggregates metrics — Paxi's benchmarker component (§4.2).
class BenchRunner {
 public:
  BenchRunner(Cluster* cluster, BenchOptions options);

  /// Runs bootstrap + warmup + measurement; returns aggregated results.
  BenchResult Run();

 private:
  Cluster* cluster_;
  BenchOptions options_;
};

/// Builds a cluster for `config`, runs one benchmark, returns the result.
BenchResult RunBenchmark(const Config& config, const BenchOptions& options);

/// One point of a saturation sweep.
struct SweepPoint {
  int clients_per_zone = 0;
  double throughput = 0.0;
  double mean_latency_ms = 0.0;
  double median_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

/// Ramps concurrency and measures throughput/latency at each level — the
/// paper's saturation methodology ("increase concurrency until throughput
/// stops increasing or latency starts to climb"). A fresh cluster is
/// built per level.
std::vector<SweepPoint> SaturationSweep(const Config& config,
                                        const BenchOptions& base,
                                        const std::vector<int>& levels);

class SweepEngine;

/// Parallel saturation sweep: levels run concurrently on `engine`, each in
/// its own simulation universe seeded by DerivePointSeed(config.seed,
/// level index), so results depend only on (config, base, levels) — never
/// on worker count or scheduling. Results come back in `levels` order.
/// Falls back to the serial sweep above when engine is null (note the
/// serial overload keeps config.seed verbatim for every level, so the two
/// overloads produce different — equally deterministic — numbers).
std::vector<SweepPoint> SaturationSweep(const Config& config,
                                        const BenchOptions& base,
                                        const std::vector<int>& levels,
                                        SweepEngine* engine);

}  // namespace paxi

#endif  // PAXI_BENCHMARK_RUNNER_H_
