#ifndef PAXI_BENCHMARK_SWEEP_H_
#define PAXI_BENCHMARK_SWEEP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paxi {

/// Resolves the sweep parallelism for a benchmark binary: `--jobs N` (or
/// `--jobs=N`) on the command line wins, else the PAXI_JOBS environment
/// variable, else 1 (serial). `--jobs 0` means "one per hardware thread".
/// The result is clamped to [1, 256]. argv is scanned, not consumed.
int SweepJobs(int argc, char** argv);

/// Deterministic per-point seed: a splitmix64 mix of the experiment's base
/// seed and the point's submission index. Every sweep point builds its own
/// simulation universe from this seed, so results are a pure function of
/// (base seed, index) — independent of worker count, scheduling order, or
/// which thread ran the point.
std::uint64_t DerivePointSeed(std::uint64_t base_seed, std::uint64_t index);

/// A thread pool for embarrassingly-parallel simulation sweeps.
///
/// Each sweep point (one protocol/config/seed combination) constructs its
/// own Simulator + Cluster universe on whichever worker claims it, runs it
/// to completion, and returns a result. Universes share nothing — the
/// library keeps all mutable state inside Simulator/Cluster (checked:
/// check-context is thread_local, RNGs are per-Simulator, the protocol
/// registry is magic-static) — so points are safe to run concurrently.
///
/// Determinism: Map() stores each point's result at its submission index,
/// so the returned vector — and any output printed from it afterwards — is
/// byte-identical for --jobs 1 and --jobs N. Point seeds must come from
/// DerivePointSeed, never from shared RNG draws made inside point bodies.
///
/// The pool is persistent: workers are spawned once and reused across
/// ForEach/Map batches (a sweep binary runs many small batches; respawning
/// threads per batch would dominate short sweeps). With jobs == 1 no
/// threads are spawned and ForEach runs inline on the caller.
class SweepEngine {
 public:
  /// `jobs` as from SweepJobs(): total concurrency, including the calling
  /// thread. jobs-1 workers are spawned; the caller participates in every
  /// batch, so jobs == 1 is purely serial.
  explicit SweepEngine(int jobs);
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  int jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(n-1), each exactly once, distributed over the pool
  /// by atomic work-stealing (dynamic load balancing: simulation points
  /// have wildly different costs — a saturated 40-client Paxos universe vs
  /// a 1-client warmup point). Blocks until every point finished. If any
  /// point throws, the first exception is rethrown here after the batch
  /// drains (remaining points still run). Not reentrant: fn must not call
  /// back into this engine.
  void ForEach(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// ForEach that gathers results in submission order.
  template <typename T, typename Fn>
  std::vector<T> Map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ForEach(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void WorkerLoop();

  /// Claims and runs points until the current batch is drained. Returns
  /// with the first exception (if any) recorded in error_.
  void DrainBatch();

  const int jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable batch_ready_;  ///< Signals workers: new batch.
  std::condition_variable batch_done_;   ///< Signals caller: workers idle.

  // Current batch (guarded by mu_ except where noted).
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_n_ = 0;
  std::atomic<std::size_t> next_index_{0};  ///< Work-stealing cursor.
  std::uint64_t batch_id_ = 0;      ///< Bumped per ForEach; wakes workers.
  int workers_in_batch_ = 0;        ///< Workers not yet done with batch.
  std::exception_ptr error_;
  bool shutdown_ = false;
};

}  // namespace paxi

#endif  // PAXI_BENCHMARK_SWEEP_H_
