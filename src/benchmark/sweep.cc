#include "benchmark/sweep.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"

namespace paxi {

namespace {

int ClampJobs(long value) {
  if (value == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    value = hw == 0 ? 1 : static_cast<long>(hw);
  }
  if (value < 1) return 1;
  if (value > 256) return 256;
  return static_cast<int>(value);
}

}  // namespace

int SweepJobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      return ClampJobs(std::strtol(argv[i + 1], nullptr, 10));
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      return ClampJobs(std::strtol(arg + 7, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("PAXI_JOBS");
      env != nullptr && *env != '\0') {
    return ClampJobs(std::strtol(env, nullptr, 10));
  }
  return 1;
}

std::uint64_t DerivePointSeed(std::uint64_t base_seed, std::uint64_t index) {
  // splitmix64 step: stream position = base + index increments of the
  // golden-ratio constant, finalized to decorrelate nearby indices.
  std::uint64_t z = base_seed + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

SweepEngine::SweepEngine(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SweepEngine::~SweepEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  batch_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SweepEngine::ForEach(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ == 1) {
    // Serial path: no atomics, no handoff — identical iteration order to
    // the pre-parallel benches.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    PAXI_CHECK(batch_fn_ == nullptr, "SweepEngine::ForEach is not reentrant");
    batch_fn_ = &fn;
    batch_n_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    workers_in_batch_ = static_cast<int>(workers_.size());
    ++batch_id_;
  }
  batch_ready_.notify_all();

  // The caller is a full participant — with jobs == 2 this thread and one
  // worker split the batch.
  DrainBatch();

  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [this] { return workers_in_batch_ == 0; });
  batch_fn_ = nullptr;
  batch_n_ = 0;
  const std::exception_ptr err = error_;
  error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

void SweepEngine::DrainBatch() {
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch_n_) return;
    try {
      (*batch_fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void SweepEngine::WorkerLoop() {
  std::uint64_t seen_batch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ready_.wait(lock, [this, seen_batch] {
        return shutdown_ || batch_id_ != seen_batch;
      });
      if (shutdown_) return;
      seen_batch = batch_id_;
    }
    DrainBatch();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_in_batch_;
    }
    batch_done_.notify_one();
  }
}

}  // namespace paxi
