#include "benchmark/runner.h"

#include <memory>

#include "benchmark/sweep.h"
#include "common/check.h"
#include "lease/lease.h"
#include "store/wal.h"

namespace paxi {
namespace {

/// Per-client closed-loop driver. Owns its workload stream; reschedules
/// itself from the completion callback until the deadline passes. Managed
/// by shared_ptr: callbacks keep the loop alive even if a straggler reply
/// lands after the run finishes.
/// Result sink shared by all loops; heap-allocated so straggler replies
/// that arrive after BenchRunner::Run returned write into live (ignored)
/// storage instead of a dead stack frame.
struct SharedState {
  BenchResult result;
  BenchOptions options;
};

struct ClientLoop : std::enable_shared_from_this<ClientLoop> {
  ClientLoop(Client* client_in, int zone_in, WorkloadGenerator gen_in,
             Cluster* cluster_in, std::shared_ptr<SharedState> state_in,
             Time measure_start_in, Time deadline_in)
      : client(client_in),
        zone(zone_in),
        gen(std::move(gen_in)),
        cluster(cluster_in),
        state(std::move(state_in)),
        measure_start(measure_start_in),
        deadline(deadline_in) {}

  Client* client;
  int zone;
  WorkloadGenerator gen;
  Cluster* cluster;
  std::shared_ptr<SharedState> state;
  Time measure_start;
  Time deadline;

  void IssueNext() {
    Simulator& sim = cluster->sim();
    if (sim.Now() >= deadline) return;
    Command cmd = gen.Next(sim.Now());
    const bool is_write = cmd.IsWrite();
    const Key key = cmd.key;
    const Value written = cmd.value;
    const NodeId target =
        cluster->TargetForClient(zone, client->client_id());
    const Time invoke = sim.Now();
    client->Issue(std::move(cmd), target,
                  [self = shared_from_this(), invoke, is_write, key,
                   written](const Client::Reply& reply) {
                    self->OnReply(invoke, is_write, key, written, reply);
                  });
  }

  void OnReply(Time invoke, bool is_write, Key key, const Value& written,
               const Client::Reply& reply) {
    Simulator& sim = cluster->sim();
    BenchResult* result = &state->result;
    const BenchOptions* options = &state->options;
    const Time response = sim.Now();
    if (options->availability != nullptr) {
      options->availability->RecordOp(
          response, reply.latency,
          reply.status.ok() || reply.status.IsNotFound());
    }
    const bool in_window = invoke >= measure_start && response <= deadline;
    if (in_window) {
      if (reply.status.ok() || reply.status.IsNotFound()) {
        ++result->completed;
        if (reply.status.IsNotFound()) ++result->not_found;
        const double ms = ToMillis(reply.latency);
        result->latency_ms.Add(ms);
        result->zone_latency_ms[zone].Add(ms);
      } else {
        ++result->errors;
      }
    }
    // Op records cover the whole run (not just the measured window): the
    // linearizability checker needs the complete write history, or reads
    // of warmup-era values would look like phantom reads.
    if (options->record_ops &&
        (reply.status.ok() || reply.status.IsNotFound())) {
      OpRecord op;
      op.invoke = invoke;
      op.response = response;
      op.is_write = is_write;
      op.key = key;
      op.value = is_write ? written : reply.value;
      op.found = is_write || reply.found;
      op.client = client->client_id();
      op.read_mode = is_write ? 0 : reply.read_mode;
      result->ops.push_back(op);
    }
    IssueNext();
  }
};

}  // namespace

BenchRunner::BenchRunner(Cluster* cluster, BenchOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  PAXI_CHECK(cluster_ != nullptr);
}

BenchResult BenchRunner::Run() {
  auto state = std::make_shared<SharedState>();
  state->options = options_;
  Simulator& sim = cluster_->sim();
  const Config& config = cluster_->config();

  std::vector<int> zones = options_.client_zones;
  if (zones.empty()) {
    for (int z = 1; z <= config.zones; ++z) zones.push_back(z);
  }

  cluster_->Start();
  const Time bootstrap_end =
      sim.Now() + static_cast<Time>(options_.bootstrap_s * kSecond);
  std::size_t events = sim.RunUntil(bootstrap_end);

  const Time traffic_start = sim.Now();
  const Time measure_start =
      traffic_start + static_cast<Time>(options_.warmup_s * kSecond);
  const Time deadline =
      measure_start + static_cast<Time>(options_.duration_s * kSecond);

  std::vector<std::shared_ptr<ClientLoop>> loops;
  int stream = 0;
  for (int zone : zones) {
    for (int i = 0; i < options_.clients_per_zone; ++i) {
      ++stream;
      auto loop = std::make_shared<ClientLoop>(
          cluster_->NewClient(zone), zone,
          WorkloadGenerator(options_.workload, zone, stream,
                            config.seed * 7919 +
                                static_cast<std::uint64_t>(stream)),
          cluster_, state, measure_start, deadline);
      loops.push_back(std::move(loop));
    }
  }

  // Stagger the initial issues by a microsecond each so clients do not
  // start in lockstep.
  Time offset = 0;
  for (auto& loop : loops) {
    sim.After(++offset, [loop]() { loop->IssueNext(); });
  }

  // With a tracker attached, sample every node's log footprint once per
  // tracker interval — the bounded-memory evidence (log length vs applied
  // index) next to the availability timeline.
  if (options_.availability != nullptr) {
    AvailabilityTracker* tracker = options_.availability;
    Cluster* cluster = cluster_;
    const Time gauge_interval = tracker->interval();
    for (Time at = sim.Now() + gauge_interval; at <= deadline;
         at += gauge_interval) {
      sim.After(at - sim.Now(), [cluster, tracker]() {
        const Time now = cluster->sim().Now();
        for (const NodeId& id : cluster->nodes()) {
          const Node* node = cluster->node(id);
          if (node == nullptr) continue;  // down (amnesia-restart window)
          const Node::LogStats stats = node->GetLogStats();
          AvailabilityTracker::LogGauge gauge;
          gauge.at = now;
          gauge.node = id.ToString();
          gauge.log_entries = stats.log_entries;
          gauge.applied = stats.applied;
          gauge.snapshot_index = stats.snapshot_index;
          gauge.entries_compacted = stats.entries_compacted;
          gauge.snapshots_taken = stats.snapshots_taken;
          gauge.snapshots_installed = stats.snapshots_installed;
          tracker->RecordLogGauge(gauge);
          const NodeDisk* disk = cluster->disk(id);
          if (disk == nullptr) continue;  // in-memory cluster
          const NodeDisk::Stats& ds = disk->stats();
          AvailabilityTracker::DiskGauge disk_gauge;
          disk_gauge.at = now;
          disk_gauge.node = id.ToString();
          disk_gauge.sync_count = ds.sync_count;
          disk_gauge.bytes_synced = ds.bytes_synced;
          disk_gauge.mean_group_commit = ds.MeanGroupCommit();
          disk_gauge.recoveries = ds.recoveries;
          disk_gauge.bytes_compacted = ds.bytes_compacted;
          tracker->RecordDiskGauge(disk_gauge);
        }
        // Read-path gauges + degradation transitions, for runs with a
        // non-default read mode (lease_manager() is null otherwise).
        for (const NodeId& id : cluster->nodes()) {
          Node* node = cluster->node(id);
          if (node == nullptr) continue;
          LeaseManager* lm = node->lease_manager();
          if (lm == nullptr) continue;
          const LeaseManager::ReadStats& rs = lm->read_stats();
          AvailabilityTracker::ReadGauge read_gauge;
          read_gauge.at = now;
          read_gauge.node = id.ToString();
          read_gauge.lease_reads = rs.lease_reads;
          read_gauge.quorum_reads = rs.quorum_reads;
          read_gauge.full_reads = rs.full_reads;
          read_gauge.degrade_to_quorum = rs.degrade_to_quorum;
          read_gauge.degrade_to_full = rs.degrade_to_full;
          read_gauge.holds_lease = lm->HoldsLeaseNow();
          tracker->RecordReadGauge(read_gauge);
          for (const LeaseManager::Transition& t : lm->DrainTransitions()) {
            AvailabilityTracker::DegradationEvent event;
            event.at = t.at;
            event.node = id.ToString();
            event.from_mode = t.from_mode;
            event.to_mode = t.to_mode;
            event.reason = t.reason;
            tracker->RecordDegradation(event);
          }
        }
      });
    }
  }

  // Run through the measured window plus a grace period for in-flight
  // requests (they do not count, but their callbacks must not dangle).
  events += sim.RunUntil(deadline);
  // The availability timeline closes at the deadline: straggler replies
  // landing during the grace period belong to no bucket.
  if (options_.availability != nullptr) options_.availability->Finalize(deadline);
  events += sim.RunUntil(deadline + config.client_timeout + kSecond);

  BenchResult result = state->result;
  result.events = events;
  result.throughput =
      static_cast<double>(result.completed) / options_.duration_s;
  for (const NodeId& id : cluster_->nodes()) {
    result.node_messages[id] = cluster_->node(id)->messages_processed();
  }
  return result;
}

BenchResult RunBenchmark(const Config& config, const BenchOptions& options) {
  Cluster cluster(config);
  BenchRunner runner(&cluster, options);
  return runner.Run();
}

std::vector<SweepPoint> SaturationSweep(const Config& config,
                                        const BenchOptions& base,
                                        const std::vector<int>& levels) {
  std::vector<SweepPoint> points;
  for (int level : levels) {
    BenchOptions options = base;
    options.clients_per_zone = level;
    const BenchResult result = RunBenchmark(config, options);
    SweepPoint p;
    p.clients_per_zone = level;
    p.throughput = result.throughput;
    p.mean_latency_ms = result.MeanLatencyMs();
    p.median_latency_ms = result.MedianLatencyMs();
    p.p99_latency_ms = result.P99LatencyMs();
    points.push_back(p);
  }
  return points;
}

std::vector<SweepPoint> SaturationSweep(const Config& config,
                                        const BenchOptions& base,
                                        const std::vector<int>& levels,
                                        SweepEngine* engine) {
  if (engine == nullptr) return SaturationSweep(config, base, levels);
  return engine->Map<SweepPoint>(levels.size(), [&](std::size_t i) {
    Config cfg = config;
    cfg.seed = DerivePointSeed(config.seed, i);
    BenchOptions options = base;
    options.clients_per_zone = levels[i];
    const BenchResult result = RunBenchmark(cfg, options);
    SweepPoint p;
    p.clients_per_zone = levels[i];
    p.throughput = result.throughput;
    p.mean_latency_ms = result.MeanLatencyMs();
    p.median_latency_ms = result.MedianLatencyMs();
    p.p99_latency_ms = result.P99LatencyMs();
    return p;
  });
}

}  // namespace paxi
