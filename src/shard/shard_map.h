#ifndef PAXI_SHARD_SHARD_MAP_H_
#define PAXI_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <map>
#include <set>

#include "common/types.h"

namespace paxi {

/// Keyspace -> consensus-group placement map (paper-scale sharding: the
/// next factor of N over one leader comes from N independent groups, not
/// a faster leader). Groups are numbered 1..num_groups. Placement is a
/// deterministic hash of the key plus an override table for keys that
/// have been migrated; the `epoch` counts placement changes so clients
/// can tell a fresh redirect from a stale one.
///
/// A key being *fenced* means a migration's handoff window is open: no
/// group may accept normal client commands for it (the destination still
/// accepts the one fenced install that ships the key's state). Fencing
/// plus the source-pipeline drain is what makes the handoff atomic —
/// see DESIGN.md "Sharding and relay dissemination".
///
/// All containers are ordered (std::map/std::set): iteration order feeds
/// digests and, through the coordinator, the event schedule, so the
/// determinism lint's unordered-iteration rule applies in full.
class ShardMap {
 public:
  explicit ShardMap(int num_groups);

  int num_groups() const { return num_groups_; }
  std::uint64_t epoch() const { return epoch_; }

  /// The group a fresh client view would route `key` to before learning
  /// any overrides: a splitmix-style hash of the key mod num_groups.
  static int BaseGroupOf(Key key, int num_groups);

  /// Authoritative placement: override if migrated, else BaseGroupOf.
  int GroupOf(Key key) const;

  bool IsFenced(Key key) const { return fenced_.count(key) != 0; }
  void Fence(Key key);
  void Unfence(Key key);

  /// Commits a migration: records the override and bumps the epoch.
  void SetOverride(Key key, int group);

  const std::map<Key, int>& overrides() const { return overrides_; }

  std::uint64_t StateDigest() const;

 private:
  int num_groups_;
  std::uint64_t epoch_ = 0;
  std::map<Key, int> overrides_;
  std::set<Key> fenced_;
};

}  // namespace paxi

#endif  // PAXI_SHARD_SHARD_MAP_H_
