#include "shard/coordinator.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/digest.h"
#include "core/messages.h"
#include "core/node.h"
#include "protocols/common/commit_pipeline.h"

namespace paxi {
namespace {

/// Drain polling cadence and budget: ~2s of virtual time before a
/// handoff gives up on the source group going quiet (it rarely needs
/// more than a few polls — closed-loop load empties the pipeline between
/// rounds; a crashed source replica is what exhausts the budget).
constexpr Time kDrainPollUs = 500;
constexpr int kMaxDrainPolls = 4000;
/// Install retry timer: generous against a LAN/WAN consensus round but
/// far below the client timeout, so a lost install or a deposed
/// destination leader costs one rotation, not a stalled fence.
constexpr Time kInstallTimeoutUs = 20 * kMillisecond;
constexpr int kMaxInstallAttempts = 10;

}  // namespace

ShardCoordinator::ShardCoordinator(Simulator* sim, Transport* transport,
                                   const Config& base, int num_groups)
    : sim_(sim),
      transport_(transport),
      nodes_per_group_(base.nodes_per_zone),
      map_(num_groups) {
  PAXI_CHECK(sim_ != nullptr && transport_ != nullptr);
  PAXI_CHECK(num_groups >= 1);
  PAXI_CHECK(num_groups * base.nodes_per_zone < kCoordinatorNode,
             "group id ranges would collide with the coordinator endpoint");
  group_configs_.reserve(static_cast<std::size_t>(num_groups));
  infos_.reserve(static_cast<std::size_t>(num_groups));
  for (int g = 1; g <= num_groups; ++g) {
    auto cfg = std::make_unique<Config>(base);
    cfg->node_base = (g - 1) * base.nodes_per_zone;
    cfg->params["leader"] = "1." + std::to_string(cfg->node_base + 1);
    cfg->params["group_id"] = std::to_string(g);
    GroupInfo info;
    info.group = g;
    info.leader = NodeId{1, cfg->node_base + 1};
    info.nodes = cfg->Nodes();
    infos_.push_back(std::move(info));
    group_configs_.push_back(std::move(cfg));
  }
}

const Config& ShardCoordinator::GroupConfig(int group) const {
  PAXI_CHECK(group >= 1 && group <= num_groups());
  return *group_configs_[static_cast<std::size_t>(group - 1)];
}

int ShardCoordinator::GroupOfNode(NodeId id) const {
  const int group = (id.node - 1) / nodes_per_group_ + 1;
  PAXI_CHECK(id.node >= 1 && group >= 1 && group <= num_groups(),
             "node id outside every group's range");
  return group;
}

const Config& ShardCoordinator::ConfigFor(NodeId id) const {
  return GroupConfig(GroupOfNode(id));
}

ShardGate::Verdict ShardCoordinator::CheckRequest(const ClientRequest& req,
                                                  int group) const {
  Verdict v;
  v.epoch = map_.epoch();
  const Key key = req.cmd.key;
  if (req.shard_install) {
    // An install is admissible only at the destination of the live
    // migration it stamps (fence-time epoch). Anything else is a
    // straggler copy of a finished or abandoned handoff — drop it; the
    // coordinator's retry machinery owns redelivery.
    const auto it = active_.find(key);
    const bool live = it != active_.end() && it->second.installing &&
                      it->second.to == group &&
                      it->second.fence_epoch == req.shard_epoch;
    if (!live) v.action = Action::kFenced;
    return v;
  }
  if (map_.IsFenced(key)) {
    v.action = Action::kFenced;
    return v;
  }
  const int owner = map_.GroupOf(key);
  if (owner != group) {
    v.action = Action::kRedirect;
    v.group = owner;
    v.leader_hint = infos_[static_cast<std::size_t>(owner - 1)].leader;
  }
  return v;
}

bool ShardCoordinator::MigrateKey(Key key, int to_group) {
  PAXI_CHECK(to_group >= 1 && to_group <= num_groups());
  if (active_.count(key) != 0) return false;  // one handoff per key
  const int from = map_.GroupOf(key);
  if (from == to_group) return false;
  Migration mig;
  mig.from = from;
  mig.to = to_group;
  map_.Fence(key);
  mig.fence_epoch = map_.epoch();
  active_.emplace(key, std::move(mig));
  ++stats_.started;
  sim_->After(kDrainPollUs, [this, key]() { PollDrain(key); });
  return true;
}

bool ShardCoordinator::SourceQuiet(const Migration& mig) const {
  PAXI_CHECK(lookup_ != nullptr, "coordinator has no node lookup wired");
  for (const NodeId id :
       infos_[static_cast<std::size_t>(mig.from - 1)].nodes) {
    Node* node = lookup_(id);
    // A dead replica (mid-restart) has no pipeline: whatever it had
    // queued died with it, and anything that committed lives on the
    // survivors the value scan reads. Protocols without a central
    // pipeline (EPaxos, WPaxos) report none and are likewise skipped —
    // their migrations rely on the fence plus the poll delay to settle.
    if (node == nullptr) continue;
    CommitPipeline* pipeline = node->commit_pipeline();
    if (pipeline == nullptr) continue;
    // Kick everything admitted into flight, then require full quiet.
    pipeline->DrainAll();
    if (pipeline->queued() != 0 || pipeline->in_flight() != 0) return false;
  }
  return true;
}

void ShardCoordinator::PollDrain(Key key) {
  const auto it = active_.find(key);
  if (it == active_.end()) return;
  Migration& mig = it->second;
  ++stats_.drain_polls;
  if (SourceQuiet(mig)) {
    CaptureAndInstall(key, mig);
    return;
  }
  if (++mig.drain_polls >= kMaxDrainPolls) {
    Abandon(key, "source group never drained");
    return;
  }
  sim_->After(kDrainPollUs, [this, key]() { PollDrain(key); });
}

void ShardCoordinator::CaptureAndInstall(Key key, Migration& mig) {
  // Take the longest per-key version history across *all* source
  // replicas: with the fence up and the pipelines drained, every
  // committed write has executed somewhere, and the replica that
  // executed the most of them holds the newest value — no reliance on
  // any node's (possibly stale) claim to leadership.
  std::size_t best_len = 0;
  for (const NodeId id :
       infos_[static_cast<std::size_t>(mig.from - 1)].nodes) {
    Node* node = lookup_(id);
    if (node == nullptr) continue;
    const auto versions = node->store().Versions(key);
    if (versions.size() > best_len) {
      best_len = versions.size();
      mig.value = versions.back().value;
      mig.writer = versions.back().writer;
    }
  }
  if (best_len == 0) {
    // Never written: nothing to ship, the handoff is a pure map flip.
    ++stats_.empty_handoffs;
    Finish(key, mig);
    return;
  }
  mig.installing = true;
  mig.install_attempts = 1;
  SendInstall(key, mig);
  ArmInstallTimeout(key, mig.install_attempts);
}

void ShardCoordinator::SendInstall(Key key, Migration& mig) {
  const auto& dest = infos_[static_cast<std::size_t>(mig.to - 1)].nodes;
  const NodeId target = dest[mig.target_cursor % dest.size()];
  ClientRequest req;
  req.cmd.op = Command::Op::kPut;
  req.cmd.key = key;
  req.cmd.value = mig.value;
  // Keep the original writer's identity: the destination's session table
  // and the per-key write history then attribute the version to the
  // client that actually wrote it, not to the coordinator.
  req.cmd.client = mig.writer.client;
  req.cmd.request = mig.writer.request;
  req.shard_install = true;
  req.shard_epoch = mig.fence_epoch;
  req.client_addr = id();
  req.issued_at = sim_->Now();
  req.from = id();
  ++stats_.installs_sent;
  transport_->Send(target, MakeMessage<ClientRequest>(std::move(req)),
                   sim_->Now());
}

void ShardCoordinator::ArmInstallTimeout(Key key, int attempt) {
  sim_->After(kInstallTimeoutUs, [this, key, attempt]() {
    const auto it = active_.find(key);
    if (it == active_.end()) return;
    Migration& mig = it->second;
    if (!mig.installing || mig.install_attempts != attempt) return;
    if (mig.install_attempts >= kMaxInstallAttempts) {
      Abandon(key, "install never acknowledged");
      return;
    }
    ++mig.install_attempts;
    ++mig.target_cursor;  // rotate off the unresponsive replica
    ++stats_.install_retries;
    SendInstall(key, mig);
    ArmInstallTimeout(key, mig.install_attempts);
  });
}

void ShardCoordinator::Deliver(MessagePtr msg) {
  const auto* reply = dynamic_cast<const ClientReply*>(msg.get());
  if (reply == nullptr) return;
  // Installs carry the original writer's (client, request): match them
  // back to the live migration. std::map iteration keeps this scan
  // deterministic; active migrations are few.
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    Migration& mig = it->second;
    if (!mig.installing || mig.writer.client != reply->client ||
        mig.writer.request != reply->request) {
      continue;
    }
    const Key key = it->first;
    if (reply->ok) {
      Finish(key, mig);
      return;
    }
    // Rejected (non-leader replica, mid-election): rotate — onto the
    // hinted leader when the rejection named one — and resend.
    if (mig.install_attempts >= kMaxInstallAttempts) {
      Abandon(key, "install rejected by destination group");
      return;
    }
    const auto& dest = infos_[static_cast<std::size_t>(mig.to - 1)].nodes;
    if (reply->leader_hint.valid()) {
      for (std::size_t i = 0; i < dest.size(); ++i) {
        if (dest[i] == reply->leader_hint) {
          mig.target_cursor = i;
          break;
        }
      }
    } else {
      ++mig.target_cursor;
    }
    ++mig.install_attempts;
    ++stats_.install_retries;
    SendInstall(key, mig);
    ArmInstallTimeout(key, mig.install_attempts);
    return;
  }
}

void ShardCoordinator::Finish(Key key, Migration& mig) {
  map_.SetOverride(key, mig.to);
  map_.Unfence(key);
  ++stats_.completed;
  active_.erase(key);
}

void ShardCoordinator::Abandon(Key key, const char* why) {
  // The fence lifts and the old placement stands. If the install in fact
  // committed but its reply was lost, the destination holds an orphaned
  // copy — harmless, because the map still routes every read and write
  // to the source group, so the orphan is never observable.
  (void)why;
  map_.Unfence(key);
  ++stats_.aborted;
  active_.erase(key);
}

std::uint64_t ShardCoordinator::StateDigest() const {
  Digest d;
  d.Mix(map_.StateDigest());
  d.Mix(static_cast<std::uint64_t>(active_.size()));
  for (const auto& [key, mig] : active_) {
    d.Mix(static_cast<std::uint64_t>(key))
        .Mix(static_cast<std::uint64_t>(mig.from))
        .Mix(static_cast<std::uint64_t>(mig.to))
        .Mix(mig.fence_epoch)
        .Mix(static_cast<std::uint64_t>(mig.install_attempts))
        .Mix(mig.installing ? 1u : 0u);
  }
  return d.value();
}

}  // namespace paxi
