#ifndef PAXI_SHARD_ROUTER_H_
#define PAXI_SHARD_ROUTER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"

namespace paxi {

/// Static per-group facts a client needs to aim a request: the group's
/// replicas and its configured (bootstrap) leader. Real leadership may
/// have moved — the normal leader_hint redirect machinery handles that
/// once the request reaches the right group.
struct GroupInfo {
  int group = 0;
  NodeId leader = NodeId::Invalid();
  std::vector<NodeId> nodes;
};

/// A client's *stale-able* view of the shard map — the GroupDirectory a
/// client consults before every request. It starts from the static base
/// placement (hash mod groups, epoch 0) and only learns about migrations
/// through redirects: when a replica rejects a request with routing info
/// carrying a newer epoch, the client adopts the override. Epoch
/// comparison is what terminates redirect loops — an older or equal
/// epoch teaches nothing, so a client never flip-flops between two
/// groups on stale hints.
class ShardRouterView {
 public:
  /// `single_leader`: route to the group's leader (leader-based
  /// protocols); otherwise to the group replica in the client's zone.
  ShardRouterView(std::vector<GroupInfo> groups, bool single_leader,
                  int client_zone);

  int num_groups() const { return static_cast<int>(groups_.size()); }
  std::uint64_t epoch() const { return epoch_; }

  /// The group this view believes owns `key`.
  int GroupOf(Key key) const;

  /// Where to aim a request for `key` right now.
  NodeId TargetFor(Key key) const;

  /// Round-robin fallback *within the believed group* after a timeout —
  /// the sharded analog of Client::NextTarget cycling config Nodes().
  NodeId NextInGroup(Key key, NodeId current) const;

  /// Learns from a rejection that carried routing info. Returns true if
  /// the view changed (the redirect's epoch was newer than ours).
  bool ObserveRedirect(Key key, int group, std::uint64_t epoch);

 private:
  const GroupInfo& Info(int group) const;

  std::vector<GroupInfo> groups_;
  bool single_leader_;
  int client_zone_;
  std::uint64_t epoch_ = 0;
  std::map<Key, int> overrides_;
};

}  // namespace paxi

#endif  // PAXI_SHARD_ROUTER_H_
