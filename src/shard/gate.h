#ifndef PAXI_SHARD_GATE_H_
#define PAXI_SHARD_GATE_H_

#include <cstdint>

#include "common/types.h"

namespace paxi {

struct ClientRequest;

/// Admission gate a replica of a sharded cluster consults before handing
/// a client request to its protocol (core/node.cc Dispatch). Implemented
/// by the ShardCoordinator; kept as a tiny interface so core/ depends on
/// nothing but this header. Replicas of a standalone cluster have no
/// gate and skip the check entirely.
///
/// The gate is authoritative: it reads the coordinator's live ShardMap,
/// so a placement flip is visible to every replica at the next dispatch.
/// Client-side staleness (the interesting failure mode) is modeled in
/// the per-client router view (shard/router.h), which only learns
/// through redirects.
class ShardGate {
 public:
  enum class Action {
    /// The key belongs to this replica's group — proceed to the protocol.
    kOwned,
    /// Another group owns the key: reject with a redirect (owning group,
    /// current epoch, that group's default leader as the hint).
    kRedirect,
    /// A migration handoff is open for the key: reject with no hint; the
    /// client backs off and retries, landing on whichever group owns the
    /// key once the fence lifts.
    kFenced,
  };

  struct Verdict {
    Action action = Action::kOwned;
    int group = -1;  ///< Owning group (kRedirect only).
    std::uint64_t epoch = 0;
    NodeId leader_hint = NodeId::Invalid();
  };

  virtual ~ShardGate() = default;

  /// Checks `req` against the map on behalf of a replica of `group`.
  /// Handles shard installs too: an install is kOwned at its destination
  /// while its fence epoch is current, kFenced (drop-and-let-the-
  /// coordinator-retry) otherwise.
  virtual Verdict CheckRequest(const ClientRequest& req, int group) const = 0;
};

}  // namespace paxi

#endif  // PAXI_SHARD_GATE_H_
