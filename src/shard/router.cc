#include "shard/router.h"

#include <utility>

#include "common/check.h"
#include "shard/shard_map.h"

namespace paxi {

ShardRouterView::ShardRouterView(std::vector<GroupInfo> groups,
                                 bool single_leader, int client_zone)
    : groups_(std::move(groups)),
      single_leader_(single_leader),
      client_zone_(client_zone) {
  PAXI_CHECK(!groups_.empty());
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    PAXI_CHECK(groups_[i].group == static_cast<int>(i) + 1,
               "group infos must be dense and 1-based");
    PAXI_CHECK(!groups_[i].nodes.empty());
  }
}

const GroupInfo& ShardRouterView::Info(int group) const {
  PAXI_CHECK(group >= 1 && group <= num_groups());
  return groups_[static_cast<std::size_t>(group - 1)];
}

int ShardRouterView::GroupOf(Key key) const {
  const auto it = overrides_.find(key);
  if (it != overrides_.end()) return it->second;
  return ShardMap::BaseGroupOf(key, num_groups());
}

NodeId ShardRouterView::TargetFor(Key key) const {
  const GroupInfo& info = Info(GroupOf(key));
  if (single_leader_) return info.leader;
  for (const NodeId id : info.nodes) {
    if (id.zone == client_zone_) return id;
  }
  return info.nodes.front();
}

NodeId ShardRouterView::NextInGroup(Key key, NodeId current) const {
  const GroupInfo& info = Info(GroupOf(key));
  const auto& nodes = info.nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == current) return nodes[(i + 1) % nodes.size()];
  }
  // `current` is outside the believed group (we just adopted an
  // override): start over at the group's preferred target.
  return TargetFor(key);
}

bool ShardRouterView::ObserveRedirect(Key key, int group,
                                      std::uint64_t epoch) {
  if (group < 1 || group > num_groups()) return false;
  if (epoch < epoch_) return false;
  // Same epoch can still teach us a *different key's* placement: two
  // migrations finalized before we refreshed leave several keys moved at
  // our newest-seen epoch. Only a no-op redirect is rejected.
  const auto it = overrides_.find(key);
  if (epoch == epoch_ && it != overrides_.end() && it->second == group) {
    return false;
  }
  epoch_ = epoch;
  overrides_[key] = group;
  return true;
}

}  // namespace paxi
