#include "shard/shard_map.h"

#include "common/check.h"
#include "common/digest.h"

namespace paxi {

ShardMap::ShardMap(int num_groups) : num_groups_(num_groups) {
  PAXI_CHECK(num_groups >= 1, "a shard map needs at least one group");
}

int ShardMap::BaseGroupOf(Key key, int num_groups) {
  PAXI_CHECK(num_groups >= 1);
  // splitmix64 finalizer: a seeded-quality spread so consecutive keys
  // (the workload generators draw small integers) don't all land in one
  // group. Pure function of the key — clients compute the same base map
  // without talking to anyone.
  std::uint64_t x = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(num_groups)) + 1;
}

int ShardMap::GroupOf(Key key) const {
  const auto it = overrides_.find(key);
  if (it != overrides_.end()) return it->second;
  return BaseGroupOf(key, num_groups_);
}

void ShardMap::Fence(Key key) {
  PAXI_CHECK(fenced_.insert(key).second,
             "key is already fenced (one migration at a time per key)");
}

void ShardMap::Unfence(Key key) {
  PAXI_CHECK(fenced_.erase(key) == 1, "unfencing a key that is not fenced");
}

void ShardMap::SetOverride(Key key, int group) {
  PAXI_CHECK(group >= 1 && group <= num_groups_);
  overrides_[key] = group;
  ++epoch_;
}

std::uint64_t ShardMap::StateDigest() const {
  Digest d;
  d.Mix(static_cast<std::uint64_t>(num_groups_)).Mix(epoch_);
  d.Mix(static_cast<std::uint64_t>(overrides_.size()));
  for (const auto& [key, group] : overrides_) {
    d.Mix(static_cast<std::uint64_t>(key))
        .Mix(static_cast<std::uint64_t>(group));
  }
  d.Mix(static_cast<std::uint64_t>(fenced_.size()));
  for (const Key key : fenced_) d.Mix(static_cast<std::uint64_t>(key));
  return d.value();
}

}  // namespace paxi
