#ifndef PAXI_SHARD_COORDINATOR_H_
#define PAXI_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "store/command.h"
#include "net/transport.h"
#include "shard/gate.h"
#include "shard/router.h"
#include "shard/shard_map.h"
#include "sim/simulator.h"

namespace paxi {

class Node;

/// Control plane of a sharded cluster (Cluster with param "groups" > 1):
/// owns the authoritative ShardMap, the per-group Configs that carve the
/// shared transport's id space into disjoint consensus groups, the
/// admission gate every replica consults (ShardGate), and the fenced
/// key-migration state machine.
///
/// The coordinator is deliberately *not* itself replicated: it stands in
/// for an external configuration service (a la a placement driver) whose
/// own consensus is out of scope. What the simulation does model
/// faithfully is the interesting distributed part — clients with stale
/// views, the handoff fence, the source-group drain, and the install
/// racing normal traffic — because those all flow through the same
/// transport and protocol machinery as everything else.
///
/// Migration protocol (DESIGN.md "Sharding and relay dissemination"):
///   1. Fence the key in the ShardMap: every group now rejects normal
///      commands for it (gate kFenced), so no new writes can enter any
///      log while ownership is in motion.
///   2. Drain the source group: poll until every replica's commit
///      pipeline is quiet (nothing queued, nothing in flight), so every
///      admitted write for the key has committed and executed. Gives up
///      and unfences after a bounded number of polls.
///   3. Capture the key's latest value by scanning *all* source-group
///      replicas and taking the longest per-key version history —
///      consensus guarantees the replica that executed the most writes
///      holds the newest value, without trusting any node's leadership
///      claim.
///   4. Install into the destination group as a shard_install
///      ClientRequest (the original writer's command identity, the fence
///      epoch as a validity stamp) through the destination's ordinary
///      consensus path; retries rotate across destination replicas.
///   5. On the install's commit reply: record the override (bumping the
///      map epoch) and lift the fence. Clients learn the new placement
///      lazily via redirects (shard/router.h).
class ShardCoordinator : public Endpoint, public ShardGate {
 public:
  /// In-zone index of the coordinator's transport endpoint. Sits between
  /// the replica id range (groups * nodes_per_zone must stay below it)
  /// and the client range (Client::kClientNodeBase = 1000).
  static constexpr std::int32_t kCoordinatorNode = 999;

  struct Stats {
    std::size_t started = 0;
    std::size_t completed = 0;
    std::size_t aborted = 0;  ///< Drain or install gave up; fence lifted.
    std::size_t installs_sent = 0;
    std::size_t install_retries = 0;
    std::size_t drain_polls = 0;
    /// Migrations of never-written keys: no state to ship, pure map flip.
    std::size_t empty_handoffs = 0;
  };

  /// Carves `base` into `num_groups` per-group configs (disjoint
  /// node_base ranges, per-group bootstrap leader "1.<base+1>").
  ShardCoordinator(Simulator* sim, Transport* transport, const Config& base,
                   int num_groups);

  /// How the coordinator reaches live replicas for drain checks and
  /// store scans; wired by the Cluster after node construction.
  using NodeLookup = std::function<Node*(NodeId)>;
  void SetNodeLookup(NodeLookup lookup) { lookup_ = std::move(lookup); }

  int num_groups() const { return map_.num_groups(); }
  const ShardMap& map() const { return map_; }

  const Config& GroupConfig(int group) const;
  /// The per-group config governing replica `id` (its peer set, leader).
  const Config& ConfigFor(NodeId id) const;
  /// The consensus group replica `id` belongs to (from its id range).
  int GroupOfNode(NodeId id) const;

  /// Static routing facts for seeding client views (shard/router.h).
  std::vector<GroupInfo> GroupInfos() const { return infos_; }

  // --- ShardGate -----------------------------------------------------------
  Verdict CheckRequest(const ClientRequest& req, int group) const override;

  // --- Endpoint (install replies land here) --------------------------------
  NodeId id() const override { return NodeId{1, kCoordinatorNode}; }
  void Deliver(MessagePtr msg) override;

  /// Starts a fenced handoff of `key` to `to_group`. Returns false (and
  /// does nothing) when a migration for the key is already running or the
  /// key already lives there. Completion is asynchronous; observe it via
  /// MigrationActive / stats / the map's epoch.
  bool MigrateKey(Key key, int to_group);

  bool MigrationActive(Key key) const { return active_.count(key) != 0; }
  const Stats& stats() const { return stats_; }

  std::uint64_t StateDigest() const;

 private:
  struct Migration {
    int from = 0;
    int to = 0;
    /// Map epoch at fence time; stamps the install so a straggler copy
    /// arriving after this migration finished is recognizably stale.
    std::uint64_t fence_epoch = 0;
    int drain_polls = 0;
    int install_attempts = 0;
    /// Round-robin cursor over destination replicas for install retries.
    std::size_t target_cursor = 0;
    bool installing = false;
    CommandId writer;  ///< Original writer of the shipped version.
    Value value;
  };

  void PollDrain(Key key);
  bool SourceQuiet(const Migration& mig) const;
  void CaptureAndInstall(Key key, Migration& mig);
  void SendInstall(Key key, Migration& mig);
  void ArmInstallTimeout(Key key, int attempt);
  void Finish(Key key, Migration& mig);
  void Abandon(Key key, const char* why);

  Simulator* sim_;
  Transport* transport_;
  NodeLookup lookup_;
  int nodes_per_group_;
  std::vector<std::unique_ptr<Config>> group_configs_;
  std::vector<GroupInfo> infos_;
  ShardMap map_;
  std::map<Key, Migration> active_;
  Stats stats_;
};

}  // namespace paxi

#endif  // PAXI_SHARD_COORDINATOR_H_
