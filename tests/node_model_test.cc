// Unit tests of the §3 node processing model implemented in core/node.cc:
// each replica is one NIC+CPU queue; messages charge t_i/t_o plus
// bandwidth time and wait FIFO behind in-progress work. These are the
// mechanics behind every saturation curve in the benches.

#include <memory>
#include <vector>

#include "core/node.h"
#include "gtest/gtest.h"
#include "net/latency.h"

namespace paxi {
namespace {

struct Ping : Message {};
struct Pong : Message {};

/// Replica that answers every Ping with a Pong and counts handled pings.
class Echo : public Node {
 public:
  Echo(NodeId id, Env env) : Node(id, env) {
    OnMessage<Ping>([this](const Ping& msg) {
      ++pings;
      handled_at.push_back(Now());
      if (reply) {
        Pong pong;
        Send(msg.from, std::move(pong));
      }
    });
    OnMessage<Pong>([this](const Pong&) { ++pongs; });
  }

  using Node::SetProcessingMultiplier;  // exposed for the model tests

  bool reply = false;
  int pings = 0;
  int pongs = 0;
  std::vector<Time> handled_at;
};

class NodeModelTest : public ::testing::Test {
 protected:
  NodeModelTest() {
    config_.zones = 1;
    config_.nodes_per_zone = 2;
    config_.proc_in_us = 10;
    config_.proc_out_us = 20;
    config_.bandwidth_bps = 1e9;  // 100B -> 0.8 us NIC time
    sim_ = std::make_unique<Simulator>(1);
    transport_ = std::make_unique<Transport>(
        sim_.get(), std::make_shared<FixedLatencyModel>(100), true);
    Node::Env env{sim_.get(), transport_.get(), &config_};
    a_ = std::make_unique<Echo>(NodeId{1, 1}, env);
    b_ = std::make_unique<Echo>(NodeId{1, 2}, env);
    transport_->Register(a_.get());
    transport_->Register(b_.get());
  }

  void SendPing(Time at) {
    sim_->At(at, [this] {
      Ping ping;
      ping.from = a_->id();
      transport_->Send(b_->id(), MakeMessage<Ping>(ping),
                       sim_->Now());
    });
  }

  Config config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Echo> a_, b_;
};

TEST_F(NodeModelTest, IncomingMessageChargesTiPlusNic) {
  SendPing(0);
  sim_->RunUntil(kSecond);
  ASSERT_EQ(b_->pings, 1);
  // Arrival at 100 (fixed latency), processing t_i=10 + NIC 0.8 -> floor 10.
  EXPECT_EQ(b_->handled_at[0], 100 + 10 + 0);  // NIC truncates to 0 us
}

TEST_F(NodeModelTest, BackToBackMessagesQueueFifo) {
  // Both pings arrive at t=100; the second waits for the first's service.
  SendPing(0);
  SendPing(0);
  sim_->RunUntil(kSecond);
  ASSERT_EQ(b_->pings, 2);
  EXPECT_EQ(b_->handled_at[1] - b_->handled_at[0], 10);
}

TEST_F(NodeModelTest, SaturationMatchesServiceTime) {
  // Offer pings far faster than 1/t_i: the node's handling cadence is
  // pinned at exactly the service time.
  for (int i = 0; i < 1000; ++i) SendPing(i);  // 1 per us >> 1 per 10 us
  sim_->RunUntil(kSecond);
  ASSERT_EQ(b_->pings, 1000);
  const Time span = b_->handled_at.back() - b_->handled_at.front();
  EXPECT_EQ(span, 999 * 10);
}

TEST_F(NodeModelTest, CrashFreezesProcessingButLosesNothing) {
  b_->Crash(50 * kMillisecond);
  SendPing(0);
  sim_->RunUntil(kSecond);
  ASSERT_EQ(b_->pings, 1);
  EXPECT_GE(b_->handled_at[0], 50 * kMillisecond);
}

TEST_F(NodeModelTest, ProcessingMultiplierScalesCpu) {
  b_->SetProcessingMultiplier(3.0);
  SendPing(0);
  SendPing(0);
  sim_->RunUntil(kSecond);
  ASSERT_EQ(b_->pings, 2);
  EXPECT_EQ(b_->handled_at[1] - b_->handled_at[0], 30);
}

TEST_F(NodeModelTest, MessageCountersTrack) {
  b_->reply = true;
  SendPing(0);
  SendPing(0);
  sim_->RunUntil(kSecond);
  EXPECT_EQ(b_->messages_processed(), 2u);
  EXPECT_EQ(b_->messages_sent(), 2u);
  EXPECT_EQ(a_->pongs, 2);
}

/// Node that broadcasts Pings on demand, for serialization-cost tests.
class Broadcaster : public Node {
 public:
  Broadcaster(NodeId id, Env env) : Node(id, env) {}

  void BlastAll() {
    Ping msg;
    BroadcastToAll(std::move(msg));
  }
  void SendIndividually() {
    for (const NodeId& p : peers()) {
      if (p != id()) {
        Ping msg;
        Send(p, std::move(msg));
      }
    }
  }
};

TEST(BroadcastCostTest, BroadcastSerializesOnce) {
  // §5.2 footnote 2: a broadcast charges the CPU once; per-destination
  // sends charge t_o each. Compare departure spreads at a receiver set.
  Config config;
  config.zones = 1;
  config.nodes_per_zone = 9;
  config.proc_out_us = 50;
  config.bandwidth_bps = 1e9;

  auto run = [&](bool broadcast) {
    Simulator sim(1);
    Transport transport(&sim, std::make_shared<FixedLatencyModel>(10), true);
    Node::Env env{&sim, &transport, &config};
    Broadcaster sender(NodeId{1, 1}, env);
    transport.Register(&sender);
    std::vector<std::unique_ptr<Echo>> receivers;
    for (int i = 2; i <= 9; ++i) {
      receivers.push_back(std::make_unique<Echo>(NodeId{1, i}, env));
      transport.Register(receivers.back().get());
    }
    sim.After(0, [&] {
      if (broadcast) {
        sender.BlastAll();
      } else {
        sender.SendIndividually();
      }
    });
    sim.RunUntil(kSecond);
    Time last = 0;
    for (auto& r : receivers) {
      EXPECT_EQ(r->messages_processed(), 1u);
      last = std::max(last, r->handled_at.empty() ? 0 : r->handled_at[0]);
    }
    return last;
  };

  const Time bcast_last = run(true);
  const Time sends_last = run(false);
  // Individual sends pay 8 * t_o of serialization; the broadcast pays one.
  EXPECT_GT(sends_last - bcast_last, 300);
}

TEST(NicCostTest, BandwidthBoundsLargeMessages) {
  // A 1 MB message on a 1 Gb/s NIC takes ~8 ms of queue occupancy.
  struct Jumbo : Message {
    std::size_t ByteSize() const override { return 1'000'000; }
  };
  Config config;
  config.zones = 1;
  config.nodes_per_zone = 2;
  config.proc_in_us = 1;
  config.bandwidth_bps = 1e9;
  Simulator sim(1);
  Transport transport(&sim, std::make_shared<FixedLatencyModel>(1), true);
  Node::Env env{&sim, &transport, &config};
  Echo receiver(NodeId{1, 2}, env);
  transport.Register(&receiver);

  Jumbo big;
  big.from = NodeId{1, 1};
  transport.Send(receiver.id(), MakeMessage<Jumbo>(big), 0);
  Ping small;
  small.from = NodeId{1, 1};
  transport.Send(receiver.id(), MakeMessage<Ping>(small), 0);
  sim.RunUntil(kSecond);
  ASSERT_EQ(receiver.pings, 1);
  // The small message queued behind ~8 ms of NIC time for the jumbo one.
  EXPECT_GT(receiver.handled_at[0], 8 * kMillisecond);
}

}  // namespace
}  // namespace paxi
