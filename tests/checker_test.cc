#include "checker/consensus.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"

namespace paxi {
namespace {

OpRecord Write(Key key, const Value& v, Time invoke, Time response) {
  OpRecord op;
  op.is_write = true;
  op.key = key;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.found = true;
  return op;
}

OpRecord Read(Key key, const Value& v, Time invoke, Time response,
              bool found = true) {
  OpRecord op;
  op.is_write = false;
  op.key = key;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.found = found;
  return op;
}

TEST(LinearizabilityTest, EmptyHistoryPasses) {
  LinearizabilityChecker checker;
  EXPECT_TRUE(checker.Check().empty());
}

TEST(LinearizabilityTest, SequentialHistoryPasses) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 0, 10));
  checker.Add(Read(1, "a", 20, 30));
  checker.Add(Write(1, "b", 40, 50));
  checker.Add(Read(1, "b", 60, 70));
  EXPECT_TRUE(checker.Check().empty());
}

TEST(LinearizabilityTest, ConcurrentReadMaySeeEitherValue) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 0, 10));
  checker.Add(Write(1, "b", 15, 40));       // concurrent with the read
  checker.Add(Read(1, "a", 20, 30));        // old value: fine (b not done)
  EXPECT_TRUE(checker.Check().empty());
  LinearizabilityChecker checker2;
  checker2.Add(Write(1, "a", 0, 10));
  checker2.Add(Write(1, "b", 15, 40));
  checker2.Add(Read(1, "b", 20, 30));       // new value early: also fine
  EXPECT_TRUE(checker2.Check().empty());
}

TEST(LinearizabilityTest, DetectsStaleRead) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 0, 10));
  checker.Add(Write(1, "b", 20, 30));  // fully between a and the read
  checker.Add(Read(1, "a", 40, 50));   // stale!
  const auto anomalies = checker.Check();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_NE(anomalies[0].reason.find("stale"), std::string::npos);
}

TEST(LinearizabilityTest, DetectsReadFromTheFuture) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 100, 110));
  checker.Add(Read(1, "a", 0, 10));  // completed before the write began
  const auto anomalies = checker.Check();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_NE(anomalies[0].reason.find("future"), std::string::npos);
}

TEST(LinearizabilityTest, DetectsPhantomValue) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 0, 10));
  checker.Add(Read(1, "zzz", 20, 30));
  const auto anomalies = checker.Check();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_NE(anomalies[0].reason.find("never written"), std::string::npos);
}

TEST(LinearizabilityTest, DetectsLostWrite) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 0, 10));
  checker.Add(Read(1, "", 20, 30, /*found=*/false));
  const auto anomalies = checker.Check();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_NE(anomalies[0].reason.find("not-found"), std::string::npos);
}

TEST(LinearizabilityTest, NotFoundBeforeAnyWritePasses) {
  LinearizabilityChecker checker;
  checker.Add(Read(1, "", 0, 5, /*found=*/false));
  checker.Add(Write(1, "a", 10, 20));
  EXPECT_TRUE(checker.Check().empty());
}

TEST(LinearizabilityTest, NotFoundConcurrentWithFirstWritePasses) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 0, 100));
  checker.Add(Read(1, "", 50, 60, /*found=*/false));
  EXPECT_TRUE(checker.Check().empty());
}

TEST(LinearizabilityTest, KeysAreIndependent) {
  LinearizabilityChecker checker;
  checker.Add(Write(1, "a", 0, 10));
  checker.Add(Read(2, "a", 20, 30));  // value "a" was never written to key 2
  EXPECT_EQ(checker.Check().size(), 1u);
}

TEST(LinearizabilityTest, AddAllAndCount) {
  LinearizabilityChecker checker;
  checker.AddAll({Write(1, "a", 0, 10), Read(1, "a", 20, 30)});
  EXPECT_EQ(checker.num_ops(), 2u);
}

// --- Consensus checker ------------------------------------------------------------

TEST(ConsensusCheckerTest, CommonPrefixLogic) {
  using V = std::vector<CommandId>;
  EXPECT_TRUE(ConsensusChecker::CommonPrefix(V{}, V{}));
  EXPECT_TRUE(ConsensusChecker::CommonPrefix(V{{1, 1}}, V{}));
  EXPECT_TRUE(ConsensusChecker::CommonPrefix(V{{1, 1}}, V{{1, 1}, {1, 2}}));
  EXPECT_FALSE(ConsensusChecker::CommonPrefix(V{{1, 1}}, V{{2, 2}}));
  EXPECT_FALSE(
      ConsensusChecker::CommonPrefix(V{{1, 1}, {1, 2}}, V{{1, 1}, {1, 3}}));
}

}  // namespace
}  // namespace paxi
