#include <map>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "gtest/gtest.h"
#include "net/latency.h"
#include "net/topology.h"
#include "net/transport.h"

namespace paxi {
namespace {

// --- Topology ----------------------------------------------------------------

TEST(TopologyTest, LanUsesMeasuredAwsDistribution) {
  const Topology t = Topology::Lan(3);
  EXPECT_FALSE(t.is_wan());
  EXPECT_EQ(t.num_zones(), 3);
  // All zone pairs in a LAN share the Fig. 3 distribution.
  EXPECT_DOUBLE_EQ(t.RttMeanMs(1, 2), 0.4271);
  EXPECT_DOUBLE_EQ(t.RttMeanMs(1, 1), 0.4271);
  EXPECT_DOUBLE_EQ(t.RttSigmaMs(2, 3), 0.0476);
}

TEST(TopologyTest, WanFiveRegions) {
  const Topology t = Topology::WanFiveRegions();
  EXPECT_TRUE(t.is_wan());
  EXPECT_EQ(t.num_zones(), 5);
  EXPECT_EQ(t.ZoneRegion(1), Region::kVirginia);
  EXPECT_EQ(t.ZoneRegion(5), Region::kJapan);
  // VA <-> OH is the short edge; IR <-> JP the long one.
  EXPECT_DOUBLE_EQ(t.RttMeanMs(1, 2), 11.0);
  EXPECT_DOUBLE_EQ(t.RttMeanMs(4, 5), 220.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(t.RttMeanMs(3, 1), t.RttMeanMs(1, 3));
  // Intra-region pairs behave like LAN.
  EXPECT_DOUBLE_EQ(t.RttMeanMs(2, 2), 0.4271);
}

TEST(TopologyTest, RegionNames) {
  EXPECT_STREQ(RegionName(Region::kVirginia), "VA");
  EXPECT_STREQ(RegionName(Region::kOhio), "OH");
  EXPECT_STREQ(RegionName(Region::kCalifornia), "CA");
  EXPECT_STREQ(RegionName(Region::kIreland), "IR");
  EXPECT_STREQ(RegionName(Region::kJapan), "JP");
}

// --- Latency model -------------------------------------------------------------

TEST(LatencyModelTest, RoundTripMatchesFig3Distribution) {
  TopologyLatencyModel model(Topology::Lan(1));
  Rng rng(5);
  RunningStats rtt_ms;
  const NodeId a{1, 1}, b{1, 2};
  for (int i = 0; i < 20000; ++i) {
    const Time fwd = model.SampleOneWay(a, b, rng);
    const Time back = model.SampleOneWay(b, a, rng);
    rtt_ms.Add(ToMillis(fwd + back));
  }
  // Fig. 3: mu = 0.4271 ms, sigma = 0.0476 ms.
  EXPECT_NEAR(rtt_ms.mean(), 0.4271, 0.01);
  EXPECT_NEAR(rtt_ms.stddev(), 0.0476, 0.01);
}

TEST(LatencyModelTest, WanPairsDiffer) {
  TopologyLatencyModel model(Topology::WanFiveRegions());
  const NodeId va{1, 1}, oh{2, 1}, jp{5, 1};
  EXPECT_LT(model.MeanOneWay(va, oh), model.MeanOneWay(va, jp));
  EXPECT_EQ(model.MeanOneWay(va, oh), FromMillis(11.0 / 2));
}

TEST(LatencyModelTest, LoopbackIsCheap) {
  TopologyLatencyModel model(Topology::Lan(1));
  Rng rng(1);
  const NodeId a{1, 1};
  EXPECT_LE(model.SampleOneWay(a, a, rng), 1);
}

TEST(LatencyModelTest, FixedModel) {
  FixedLatencyModel model(123);
  Rng rng(1);
  EXPECT_EQ(model.SampleOneWay({1, 1}, {1, 2}, rng), 123);
  EXPECT_EQ(model.MeanOneWay({1, 1}, {1, 2}), 123);
}

// --- Transport -----------------------------------------------------------------

struct Probe : Endpoint {
  NodeId id_;
  std::vector<MessagePtr> received;
  std::vector<Time> arrival_times;
  Simulator* sim = nullptr;

  NodeId id() const override { return id_; }
  void Deliver(MessagePtr msg) override {
    received.push_back(std::move(msg));
    arrival_times.push_back(sim->Now());
  }
};

struct TestMsg : Message {
  int payload = 0;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : sim_(1),
        transport_(&sim_, std::make_shared<FixedLatencyModel>(100), true) {
    a_.id_ = NodeId{1, 1};
    b_.id_ = NodeId{1, 2};
    a_.sim = b_.sim = &sim_;
    transport_.Register(&a_);
    transport_.Register(&b_);
  }

  void Send(int payload, Time departure = 0) {
    TestMsg msg;
    msg.payload = payload;
    msg.from = a_.id_;
    transport_.Send(b_.id_, MakeMessage<TestMsg>(msg), departure);
  }

  Simulator sim_;
  Transport transport_;
  Probe a_, b_;
};

TEST_F(TransportTest, DeliversWithLatency) {
  Send(7);
  sim_.RunUntil(1000);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.arrival_times[0], 100);
  const auto* msg = dynamic_cast<const TestMsg*>(b_.received[0].get());
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->payload, 7);
  EXPECT_EQ(msg->from, a_.id_);
  EXPECT_EQ(transport_.messages_sent(), 1u);
}

TEST_F(TransportTest, DepartureDelaysArrival) {
  Send(1, /*departure=*/50);
  sim_.RunUntil(1000);
  EXPECT_EQ(b_.arrival_times[0], 150);
}

TEST_F(TransportTest, UnknownDestinationCountsDropped) {
  TestMsg msg;
  msg.from = a_.id_;
  transport_.Send(NodeId{9, 9}, MakeMessage<TestMsg>(msg), 0);
  sim_.RunUntil(1000);
  EXPECT_EQ(transport_.messages_dropped(), 1u);
}

TEST_F(TransportTest, DropFaultDropsEverything) {
  transport_.Drop(a_.id_, b_.id_, 10 * kSecond);
  for (int i = 0; i < 5; ++i) Send(i);
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(transport_.messages_dropped(), 5u);
}

TEST_F(TransportTest, DropFaultExpires) {
  transport_.Drop(a_.id_, b_.id_, 500);
  Send(1);  // dropped (now=0 < 500)
  sim_.RunUntil(1000);
  Send(2);  // fault expired
  sim_.RunUntil(5000);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(dynamic_cast<const TestMsg*>(b_.received[0].get())->payload, 2);
}

TEST_F(TransportTest, DropIsDirectional) {
  transport_.Drop(a_.id_, b_.id_, 10 * kSecond);
  TestMsg msg;
  msg.from = b_.id_;
  transport_.Send(a_.id_, MakeMessage<TestMsg>(msg), 0);
  sim_.RunUntil(kSecond);
  EXPECT_EQ(a_.received.size(), 1u);
}

TEST_F(TransportTest, FlakyDropsProbabilistically) {
  transport_.Flaky(a_.id_, b_.id_, 0.5, 10 * kSecond);
  for (int i = 0; i < 1000; ++i) Send(i);
  sim_.RunUntil(kSecond);
  EXPECT_GT(b_.received.size(), 300u);
  EXPECT_LT(b_.received.size(), 700u);
}

TEST_F(TransportTest, SlowAddsDelay) {
  transport_.Slow(a_.id_, b_.id_, 1000, 10 * kSecond);
  RunningStats extra;
  for (int i = 0; i < 200; ++i) Send(i);
  sim_.RunUntil(10 * kSecond);
  ASSERT_EQ(b_.received.size(), 200u);
  for (Time t : b_.arrival_times) {
    EXPECT_GE(t, 100);
    EXPECT_LE(t, 100 + 1000 + 1);
  }
}

TEST_F(TransportTest, OrderedDeliveryIsFifoPerLink) {
  // With ordered transport, later sends never overtake earlier ones even
  // if the sampled latency would allow it.
  for (int i = 0; i < 50; ++i) Send(i, /*departure=*/i);
  sim_.RunUntil(kSecond);
  ASSERT_EQ(b_.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dynamic_cast<const TestMsg*>(b_.received[i].get())->payload, i);
  }
  for (std::size_t i = 1; i < b_.arrival_times.size(); ++i) {
    EXPECT_GE(b_.arrival_times[i], b_.arrival_times[i - 1]);
  }
}

TEST_F(TransportTest, FaultExpiryBoundaryIsExclusive) {
  // A fault with duration D set at t0 covers [t0, t0+D): at exactly
  // t0+D the link is clean again.
  transport_.Drop(a_.id_, b_.id_, 500);
  sim_.RunUntil(499);
  Send(1);  // now=499 < 500: dropped
  sim_.RunUntil(500);
  Send(2);  // now=500: expired
  sim_.RunUntil(5000);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(dynamic_cast<const TestMsg*>(b_.received[0].get())->payload, 2);
  EXPECT_EQ(transport_.fault_counters().dropped, 1u);
}

TEST_F(TransportTest, SlowExpiryBoundaryAddsNoDelay) {
  transport_.Slow(a_.id_, b_.id_, 1000, 500);
  sim_.RunUntil(500);
  Send(1);
  sim_.RunUntil(5000);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.arrival_times[0], 600);  // fixed 100, no extra
  EXPECT_EQ(transport_.fault_counters().slowed, 0u);
}

TEST_F(TransportTest, FlakyExpiryBoundaryDelivers) {
  transport_.Flaky(a_.id_, b_.id_, 1.0, 500);
  sim_.RunUntil(499);
  Send(1);  // p=1 inside the window: dropped
  sim_.RunUntil(500);
  Send(2);
  sim_.RunUntil(5000);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(dynamic_cast<const TestMsg*>(b_.received[0].get())->payload, 2);
  EXPECT_EQ(transport_.fault_counters().flaky_dropped, 1u);
}

TEST_F(TransportTest, OverlappingFaultsOnOneLinkCompose) {
  // Drop and Slow on the same link: Drop wins while it lasts, Slow keeps
  // acting after the Drop expires.
  transport_.Drop(a_.id_, b_.id_, 500);
  transport_.Slow(a_.id_, b_.id_, 1000, 10 * kSecond);
  Send(1);  // dropped
  sim_.RunUntil(600);
  Send(2);  // slowed
  sim_.RunUntil(10 * kSecond);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(dynamic_cast<const TestMsg*>(b_.received[0].get())->payload, 2);
  EXPECT_GE(b_.arrival_times[0], 700);          // 600 + net 100
  EXPECT_LE(b_.arrival_times[0], 700 + 1000);   // + extra in [0, 1000]
  EXPECT_EQ(transport_.fault_counters().dropped, 1u);
  EXPECT_EQ(transport_.fault_counters().slowed, 1u);
}

TEST_F(TransportTest, ActiveFaultCountPrunesExpiredEntries) {
  transport_.Drop(a_.id_, b_.id_, 500);
  transport_.Slow(b_.id_, a_.id_, 200, 10 * kSecond);
  EXPECT_EQ(transport_.active_fault_count(), 2u);
  sim_.RunUntil(1000);
  // The a->b entry fully expired and is garbage-collected; b->a remains.
  EXPECT_EQ(transport_.active_fault_count(), 1u);
  transport_.Heal();
  EXPECT_EQ(transport_.active_fault_count(), 0u);
}

TEST_F(TransportTest, SlowPreservesFifoInOrderedMode) {
  // Slow jitters per-message delay but must not reorder a TCP-like link:
  // the FIFO watermark pushes out-of-order samples behind their
  // predecessors.
  transport_.Slow(a_.id_, b_.id_, 5000, 10 * kSecond);
  for (int i = 0; i < 100; ++i) Send(i);
  sim_.RunUntil(20 * kSecond);
  ASSERT_EQ(b_.received.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dynamic_cast<const TestMsg*>(b_.received[static_cast<std::size_t>(
                  i)].get())->payload, i);
  }
  for (std::size_t i = 1; i < b_.arrival_times.size(); ++i) {
    EXPECT_GE(b_.arrival_times[i], b_.arrival_times[i - 1]);
  }
}

TEST_F(TransportTest, DuplicateDeliversExtraCopies) {
  transport_.Duplicate(a_.id_, b_.id_, 1.0, 10 * kSecond);
  for (int i = 0; i < 10; ++i) Send(i);
  sim_.RunUntil(10 * kSecond);
  EXPECT_EQ(b_.received.size(), 20u);
  EXPECT_EQ(transport_.messages_duplicated(), 10u);
  // Every payload arrives exactly twice (the copy shares the original's
  // immutable message object).
  std::map<int, int> copies;
  for (const MessagePtr& m : b_.received) {
    ++copies[dynamic_cast<const TestMsg*>(m.get())->payload];
  }
  for (const auto& [payload, n] : copies) EXPECT_EQ(n, 2) << payload;
}

TEST_F(TransportTest, ReorderBypassesFifoInOrderedMode) {
  transport_.Reorder(a_.id_, b_.id_, 1.0, 2000, 10 * kSecond);
  for (int i = 0; i < 50; ++i) Send(i);
  sim_.RunUntil(10 * kSecond);
  ASSERT_EQ(b_.received.size(), 50u);
  EXPECT_EQ(transport_.messages_reordered(), 50u);
  bool inverted = false;
  for (std::size_t i = 1; i < b_.received.size(); ++i) {
    if (dynamic_cast<const TestMsg*>(b_.received[i].get())->payload <
        dynamic_cast<const TestMsg*>(b_.received[i - 1].get())->payload) {
      inverted = true;
    }
  }
  EXPECT_TRUE(inverted) << "bounded reordering never produced an inversion";
}

TEST_F(TransportTest, PartitionCutsBothDirectionsAndHeals) {
  Probe c;
  c.id_ = NodeId{1, 3};
  c.sim = &sim_;
  transport_.Register(&c);
  transport_.Partition({{a_.id_}, {b_.id_, c.id_}}, 10 * kSecond);

  Send(1);  // a->b: cut
  TestMsg from_b;
  from_b.from = b_.id_;
  transport_.Send(a_.id_, MakeMessage<TestMsg>(from_b), 0);  // cut
  TestMsg same_group;
  same_group.from = b_.id_;
  transport_.Send(c.id_, MakeMessage<TestMsg>(same_group), 0);
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(b_.received.empty());
  EXPECT_TRUE(a_.received.empty());
  EXPECT_EQ(c.received.size(), 1u);  // same-side traffic unaffected

  transport_.Heal();
  Send(2);
  sim_.RunUntil(2 * kSecond);
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(dynamic_cast<const TestMsg*>(b_.received[0].get())->payload, 2);
}

TEST_F(TransportTest, DirectedPartitionCutsOneDirectionOnly) {
  transport_.PartitionDirected({a_.id_}, {b_.id_}, 10 * kSecond);
  Send(1);  // a->b: cut
  TestMsg reverse;
  reverse.from = b_.id_;
  transport_.Send(a_.id_, MakeMessage<TestMsg>(reverse), 0);
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(a_.received.size(), 1u);
}

TEST_F(TransportTest, UnregisterMidFlightCountsDeadLetter) {
  // Delivery is late-bound: the endpoint lookup happens at the arrival
  // instant, so a message in flight to a node that goes down lands in the
  // dead-letter count instead of a stale pointer.
  Send(1);  // arrival at t=100
  transport_.Unregister(b_.id_);
  sim_.RunUntil(kSecond);
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(transport_.fault_counters().dead_letters, 1u);
  EXPECT_EQ(transport_.messages_dropped(), 1u);
}

TEST(TransportUnorderedTest, UnorderedMayReorder) {
  // With a jittery latency model and unordered mode, reordering is
  // possible (we only assert everything still arrives).
  Simulator sim(3);
  Transport transport(
      &sim, std::make_shared<TopologyLatencyModel>(Topology::Lan(1)), false);
  Probe a, b;
  a.id_ = NodeId{1, 1};
  b.id_ = NodeId{1, 2};
  a.sim = b.sim = &sim;
  transport.Register(&a);
  transport.Register(&b);
  for (int i = 0; i < 100; ++i) {
    TestMsg msg;
    msg.payload = i;
    msg.from = a.id_;
    transport.Send(b.id_, MakeMessage<TestMsg>(msg), 0);
  }
  sim.RunUntil(kSecond);
  EXPECT_EQ(b.received.size(), 100u);
}

}  // namespace
}  // namespace paxi
