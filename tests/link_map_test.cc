#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "gtest/gtest.h"
#include "net/latency.h"
#include "net/link_map.h"
#include "net/message.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace paxi {
namespace {

// --- LinkKey packing ---------------------------------------------------------

TEST(LinkKeyTest, PackUnpackRoundTrip) {
  const NodeId from{3, 17};
  const NodeId to{1, 1042};  // clients sit at node >= 1000
  const LinkKey key = PackLink(from, to);
  EXPECT_NE(key, 0u);
  EXPECT_EQ(LinkFrom(key), from);
  EXPECT_EQ(LinkTo(key), to);
}

TEST(LinkKeyTest, DistinctLinksDistinctKeys) {
  std::set<LinkKey> keys;
  for (int za = 1; za <= 3; ++za) {
    for (int na = 1; na <= 3; ++na) {
      for (int zb = 1; zb <= 3; ++zb) {
        for (int nb = 1; nb <= 3; ++nb) {
          keys.insert(PackLink(NodeId{za, na}, NodeId{zb, nb}));
        }
      }
    }
  }
  EXPECT_EQ(keys.size(), 81u);  // 9 senders x 9 receivers
  // Direction matters.
  EXPECT_NE(PackLink(NodeId{1, 1}, NodeId{1, 2}),
            PackLink(NodeId{1, 2}, NodeId{1, 1}));
}

// --- LinkMap core ------------------------------------------------------------

/// Keys for direct LinkMap tests; arbitrary nonzero values are fine.
LinkKey K(std::uint64_t i) { return PackLink(NodeId{1, 1}, NodeId{2, static_cast<std::int32_t>(i + 1)}); }

TEST(LinkMapTest, InsertFindErase) {
  LinkMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(K(0)), nullptr);
  EXPECT_FALSE(map.Erase(K(0)));  // erase on empty map

  map[K(0)] = 42;
  map[K(1)] = 7;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(K(0)), nullptr);
  EXPECT_EQ(*map.Find(K(0)), 42);
  EXPECT_EQ(map.Find(K(2)), nullptr);

  // operator[] on an existing key returns the same slot, no new entry.
  map[K(0)] = 43;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(*map.Find(K(0)), 43);

  EXPECT_TRUE(map.Erase(K(0)));
  EXPECT_FALSE(map.Erase(K(0)));  // already gone
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(K(0)), nullptr);
  ASSERT_NE(map.Find(K(1)), nullptr);
  EXPECT_EQ(*map.Find(K(1)), 7);
}

TEST(LinkMapTest, GrowthPreservesAllEntries) {
  // Push the table through several doublings (initial capacity is 16, grow
  // at 3/4 load) and verify nothing is lost or corrupted on rehash.
  LinkMap<std::uint64_t> map;
  constexpr std::uint64_t kCount = 1000;
  for (std::uint64_t i = 0; i < kCount; ++i) map[K(i)] = i * i;
  EXPECT_EQ(map.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_NE(map.Find(K(i)), nullptr) << "lost key " << i;
    EXPECT_EQ(*map.Find(K(i)), i * i);
  }
}

TEST(LinkMapTest, BackwardShiftDeletionKeepsChainsReachable) {
  // Open addressing with backward-shift deletion: erasing from the middle
  // of a probe chain must never strand entries behind a hole. Erase every
  // third key from a well-loaded table and verify all survivors resolve.
  LinkMap<std::uint64_t> map;
  constexpr std::uint64_t kCount = 500;
  for (std::uint64_t i = 0; i < kCount; ++i) map[K(i)] = i;
  for (std::uint64_t i = 0; i < kCount; i += 3) EXPECT_TRUE(map.Erase(K(i)));
  for (std::uint64_t i = 0; i < kCount; ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(map.Find(K(i)), nullptr);
    } else {
      ASSERT_NE(map.Find(K(i)), nullptr) << "stranded key " << i;
      EXPECT_EQ(*map.Find(K(i)), i);
    }
  }
}

TEST(LinkMapTest, SlotReuseAfterChurn) {
  // Steady-state churn (nemesis crash-restart cycles): erased slots must be
  // reusable, so a map whose live size is constant keeps working through
  // many insert/erase generations (no tombstone accumulation by design —
  // deletion shifts, it does not mark).
  LinkMap<int> map;
  for (std::uint64_t gen = 0; gen < 200; ++gen) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      map[K(gen * 8 + i)] = static_cast<int>(gen);
    }
    for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(map.Erase(K(gen * 8 + i)));
  }
  EXPECT_TRUE(map.empty());
  map[K(1)] = 99;
  ASSERT_NE(map.Find(K(1)), nullptr);
  EXPECT_EQ(*map.Find(K(1)), 99);
}

TEST(LinkMapTest, EraseIfReturnsCountAndKeepsRest) {
  LinkMap<std::uint64_t> map;
  for (std::uint64_t i = 0; i < 100; ++i) map[K(i)] = i;
  const std::size_t erased =
      map.EraseIf([](LinkKey, std::uint64_t v) { return v % 2 == 0; });
  EXPECT_EQ(erased, 50u);
  EXPECT_EQ(map.size(), 50u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(map.Find(K(i)) != nullptr, i % 2 == 1);
  }
}

TEST(LinkMapTest, ForEachVisitsEveryEntryOnce) {
  LinkMap<std::uint64_t> map;
  for (std::uint64_t i = 0; i < 64; ++i) map[K(i)] = i;
  std::map<LinkKey, int> visits;
  map.ForEach([&](LinkKey key, std::uint64_t&) { ++visits[key]; });
  EXPECT_EQ(visits.size(), 64u);
  for (const auto& [key, count] : visits) EXPECT_EQ(count, 1) << key;
}

TEST(LinkMapTest, IterationOrderIsDeterministic) {
  // Simulations must be byte-replayable: two maps built by the same
  // insert/erase sequence iterate in the same order (the order is a pure
  // function of the key hashes, never of pointers or allocation).
  auto build = [] {
    LinkMap<std::uint64_t> map;
    for (std::uint64_t i = 0; i < 128; ++i) map[K(i)] = i;
    for (std::uint64_t i = 0; i < 128; i += 5) map.Erase(K(i));
    return map;
  };
  LinkMap<std::uint64_t> a = build();
  LinkMap<std::uint64_t> b = build();
  std::vector<LinkKey> order_a, order_b;
  a.ForEach([&](LinkKey key, std::uint64_t&) { order_a.push_back(key); });
  b.ForEach([&](LinkKey key, std::uint64_t&) { order_b.push_back(key); });
  EXPECT_EQ(order_a, order_b);
}

TEST(LinkMapTest, ClearResetsEverything) {
  LinkMap<int> map;
  for (std::uint64_t i = 0; i < 20; ++i) map[K(i)] = 1;
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(K(3)), nullptr);
  map[K(3)] = 5;  // usable after Clear
  EXPECT_EQ(map.size(), 1u);
}

// --- Transport edge cases backed by LinkMap ----------------------------------

struct Ping : Message {
  int seq = 0;
};

/// Records each delivery's sequence number and arrival instant.
class RecordingEndpoint : public Endpoint {
 public:
  RecordingEndpoint(NodeId id, Simulator* sim) : id_(id), sim_(sim) {}

  NodeId id() const override { return id_; }
  void Deliver(MessagePtr msg) override {
    const auto& ping = static_cast<const Ping&>(*msg);
    deliveries.emplace_back(ping.seq, sim_->Now());
  }

  std::vector<std::pair<int, Time>> deliveries;

 private:
  NodeId id_;
  Simulator* sim_;
};

MessagePtr MakePing(NodeId from, int seq) {
  Ping ping;
  ping.from = from;
  ping.seq = seq;
  return MakeMessage<Ping>(ping);
}

class TransportLinkStateTest : public ::testing::Test {
 protected:
  TransportLinkStateTest()
      : transport_(&sim_, std::make_shared<FixedLatencyModel>(kMillisecond),
                   /*ordered=*/true),
        a_(NodeId{1, 1}, &sim_),
        b_(NodeId{1, 2}, &sim_) {
    transport_.Register(&a_);
    transport_.Register(&b_);
  }

  Simulator sim_;
  Transport transport_;
  RecordingEndpoint a_;
  RecordingEndpoint b_;
};

TEST_F(TransportLinkStateTest, UnregisterDropsFifoWatermark) {
  // Plant a far-future FIFO watermark on A->B via a late departure.
  transport_.Send(b_.id(), MakePing(a_.id(), 0), /*departure=*/kSecond);
  sim_.RunToCompletion();
  ASSERT_EQ(b_.deliveries.size(), 1u);
  const Time watermark = b_.deliveries[0].second;
  EXPECT_GE(watermark, kSecond);

  // While the watermark stands, an immediate send queues behind it.
  transport_.Send(b_.id(), MakePing(a_.id(), 1), /*departure=*/0);
  sim_.RunToCompletion();
  ASSERT_EQ(b_.deliveries.size(), 2u);
  EXPECT_GE(b_.deliveries[1].second, watermark);

  // A restart tears the connection down: Unregister must GC watermarks on
  // every link touching B, so the new incarnation starts FIFO-fresh.
  transport_.Unregister(b_.id());
  transport_.Register(&b_);
  const Time restart_now = sim_.Now();
  transport_.Send(b_.id(), MakePing(a_.id(), 2), /*departure=*/0);
  sim_.RunToCompletion();
  ASSERT_EQ(b_.deliveries.size(), 3u);
  EXPECT_EQ(b_.deliveries[2].second, restart_now + kMillisecond)
      << "stale watermark survived Unregister";
}

TEST_F(TransportLinkStateTest, FifoHoldsAcrossManyMessages) {
  // Same-link messages must arrive in send order; with a fixed latency the
  // watermark path is exercised on every send.
  for (int i = 0; i < 50; ++i) {
    transport_.Send(b_.id(), MakePing(a_.id(), i), /*departure=*/0);
  }
  sim_.RunToCompletion();
  ASSERT_EQ(b_.deliveries.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(b_.deliveries[i].first, i);
}

TEST_F(TransportLinkStateTest, SendToUnknownIsDeadLetter) {
  transport_.Send(NodeId{9, 9}, MakePing(a_.id(), 0), 0);
  EXPECT_EQ(transport_.fault_counters().dead_letters, 1u);
  EXPECT_EQ(transport_.messages_dropped(), 1u);

  // DeliverNow (the model checker's firing path) reports the dead letter
  // to its caller as well as counting it.
  EXPECT_FALSE(transport_.DeliverNow(NodeId{9, 9}, MakePing(a_.id(), 1)));
  EXPECT_TRUE(transport_.DeliverNow(b_.id(), MakePing(a_.id(), 2)));
  EXPECT_EQ(transport_.fault_counters().dead_letters, 2u);
}

TEST_F(TransportLinkStateTest, ExpiredFaultsAreGarbageCollected) {
  transport_.Drop(a_.id(), b_.id(), /*duration=*/10 * kMillisecond);
  EXPECT_EQ(transport_.active_fault_count(), 1u);

  // Inside the window the fault bites.
  transport_.Send(b_.id(), MakePing(a_.id(), 0), 0);
  sim_.RunToCompletion();
  EXPECT_TRUE(b_.deliveries.empty());
  EXPECT_EQ(transport_.fault_counters().dropped, 1u);

  // Past expiry the same link works again (Send lazily erases the stale
  // entry), and the active count reports zero.
  sim_.RunUntil(sim_.Now() + 20 * kMillisecond);
  transport_.Send(b_.id(), MakePing(a_.id(), 1), 0);
  sim_.RunToCompletion();
  ASSERT_EQ(b_.deliveries.size(), 1u);
  EXPECT_EQ(transport_.active_fault_count(), 0u);
}

TEST_F(TransportLinkStateTest, FaultFreeFastPathStaysClean) {
  // With no faults ever installed, the fault map must stay empty (the
  // per-send handling is a single empty() branch) while FIFO watermarks
  // still do their job.
  for (int i = 0; i < 10; ++i) {
    transport_.Send(b_.id(), MakePing(a_.id(), i), 0);
  }
  sim_.RunToCompletion();
  EXPECT_EQ(transport_.active_fault_count(), 0u);
  EXPECT_EQ(b_.deliveries.size(), 10u);
  EXPECT_EQ(transport_.fault_counters().dropped, 0u);
}

}  // namespace
}  // namespace paxi
