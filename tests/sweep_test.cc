// Sweep-engine correctness: jobs-invariant determinism (the property the
// parallel benches rely on for byte-identical output), work distribution,
// exception propagation, engine reuse, and a contention stress that gives
// TSan real interleavings to examine.

#include "benchmark/sweep.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchmark/runner.h"
#include "gtest/gtest.h"

namespace paxi {
namespace {

TEST(SweepJobsTest, DefaultsToSerial) {
  char prog[] = "bench";
  char* argv[] = {prog};
  unsetenv("PAXI_JOBS");
  EXPECT_EQ(SweepJobs(1, argv), 1);
}

TEST(SweepJobsTest, ParsesFlagForms) {
  char prog[] = "bench";
  char flag[] = "--jobs";
  char value[] = "6";
  char combined[] = "--jobs=9";
  {
    char* argv[] = {prog, flag, value};
    EXPECT_EQ(SweepJobs(3, argv), 6);
  }
  {
    char* argv[] = {prog, combined};
    EXPECT_EQ(SweepJobs(2, argv), 9);
  }
}

TEST(SweepJobsTest, FlagBeatsEnvironmentAndClamps) {
  char prog[] = "bench";
  char combined[] = "--jobs=3";
  char* argv[] = {prog, combined};
  setenv("PAXI_JOBS", "12", 1);
  EXPECT_EQ(SweepJobs(2, argv), 3);

  char* bare[] = {prog};
  EXPECT_EQ(SweepJobs(1, bare), 12);
  setenv("PAXI_JOBS", "100000", 1);
  EXPECT_EQ(SweepJobs(1, bare), 256);
  setenv("PAXI_JOBS", "-3", 1);
  EXPECT_EQ(SweepJobs(1, bare), 1);
  unsetenv("PAXI_JOBS");
}

TEST(SweepSeedTest, DeriveIsDeterministicAndSpreads) {
  EXPECT_EQ(DerivePointSeed(1, 0), DerivePointSeed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(DerivePointSeed(1, i));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across nearby indices
  EXPECT_NE(DerivePointSeed(1, 0), DerivePointSeed(2, 0));
}

TEST(SweepEngineTest, RunsEveryIndexExactlyOnce) {
  SweepEngine engine(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> counts(kN);
  engine.ForEach(kN, [&counts](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(SweepEngineTest, EmptyBatchIsANoOp) {
  SweepEngine engine(4);
  engine.ForEach(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(SweepEngineTest, MapPreservesSubmissionOrder) {
  SweepEngine engine(8);
  const std::vector<std::size_t> out =
      engine.Map<std::size_t>(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(SweepEngineTest, EngineIsReusableAcrossBatches) {
  SweepEngine engine(3);
  for (int round = 0; round < 20; ++round) {
    const std::vector<int> out = engine.Map<int>(
        static_cast<std::size_t>(round % 7), [round](std::size_t i) {
          return round * 100 + static_cast<int>(i);
        });
    ASSERT_EQ(out.size(), static_cast<std::size_t>(round % 7));
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], round * 100 + static_cast<int>(i));
    }
  }
}

TEST(SweepEngineTest, FirstExceptionPropagatesAfterBatchDrains) {
  SweepEngine engine(4);
  std::atomic<int> ran{0};
  try {
    engine.ForEach(32, [&ran](std::size_t i) {
      ++ran;
      if (i == 5) throw std::runtime_error("point 5 failed");
    });
    FAIL() << "expected the point's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "point 5 failed");
  }
  // Remaining points still ran; the batch drained before rethrow.
  EXPECT_EQ(ran.load(), 32);
}

// The acceptance property behind every converted bench: a real simulation
// sweep gathers byte-identical results whether run serially or on 8
// workers, because each point's universe is seeded by submission index
// only. Results are compared bit-for-bit (operator== on double).
TEST(SweepEngineTest, SimulationSweepIsJobsInvariant) {
  const auto sweep_point = [](std::size_t i) {
    BenchOptions options;
    options.workload = UniformWorkload(50, 0.5);
    options.clients_per_zone = 1 + static_cast<int>(i % 3);
    options.bootstrap_s = 0.3;
    options.warmup_s = 0.1;
    options.duration_s = 0.2;
    Config cfg = Config::Lan9(i % 2 == 0 ? "paxos" : "epaxos");
    cfg.seed = DerivePointSeed(99, i);
    const BenchResult r = RunBenchmark(cfg, options);
    return std::to_string(r.completed) + "," +
           std::to_string(r.throughput) + "," +
           std::to_string(r.MeanLatencyMs()) + "," +
           std::to_string(r.P99LatencyMs());
  };

  constexpr std::size_t kPoints = 8;
  SweepEngine serial(1);
  const std::vector<std::string> expected =
      serial.Map<std::string>(kPoints, sweep_point);
  for (const std::string& line : expected) {
    EXPECT_NE(line, "") << "sweep point produced no result";
  }

  SweepEngine parallel(8);
  const std::vector<std::string> actual =
      parallel.Map<std::string>(kPoints, sweep_point);
  EXPECT_EQ(expected, actual);

  // And again on the same engine: reuse does not perturb determinism.
  EXPECT_EQ(expected, parallel.Map<std::string>(kPoints, sweep_point));
}

// Parallel SaturationSweep returns the same points regardless of jobs.
TEST(SweepEngineTest, SaturationSweepEngineOverloadIsJobsInvariant) {
  BenchOptions options;
  options.workload = UniformWorkload(50, 0.5);
  options.bootstrap_s = 0.3;
  options.warmup_s = 0.1;
  options.duration_s = 0.2;
  const std::vector<int> levels = {1, 2, 4};

  SweepEngine serial(1);
  SweepEngine parallel(4);
  const auto a = SaturationSweep(Config::Lan9("paxos"), options, levels,
                                 &serial);
  const auto b = SaturationSweep(Config::Lan9("paxos"), options, levels,
                                 &parallel);
  ASSERT_EQ(a.size(), levels.size());
  ASSERT_EQ(b.size(), levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_EQ(a[i].clients_per_zone, levels[i]);
    EXPECT_EQ(a[i].throughput, b[i].throughput);
    EXPECT_EQ(a[i].mean_latency_ms, b[i].mean_latency_ms);
    EXPECT_EQ(a[i].p99_latency_ms, b[i].p99_latency_ms);
  }
}

// Many tiny batches with contended shared counters: nothing here is
// interesting single-threaded, but under TSan this exercises the batch
// handoff (publish, steal, drain, join) thousands of times.
TEST(SweepEngineTest, HandoffStress) {
  SweepEngine engine(8);
  std::atomic<std::uint64_t> total{0};
  std::uint64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(1 + round % 13);
    for (std::size_t i = 0; i < n; ++i) expected += i;
    engine.ForEach(n, [&total](std::size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace paxi
