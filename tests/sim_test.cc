#include <vector>

#include "gtest/gtest.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace paxi {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PeekAndClear) {
  EventQueue q;
  q.Push(5, [] {});
  q.Push(3, [] {});
  EXPECT_EQ(q.PeekTime(), 3);
  EXPECT_EQ(q.size(), 2u);
  q.Clear();
  EXPECT_TRUE(q.empty());
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = -1;
  sim.At(500, [&] { seen = sim.Now(); });
  sim.RunUntil(1000);
  EXPECT_EQ(seen, 500);
  EXPECT_EQ(sim.Now(), 1000);  // clock lands on the deadline
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.At(100, [&] { ++ran; });
  sim.At(200, [&] { ++ran; });
  sim.At(300, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(200), 2u);  // events at exactly the deadline run
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(1000);
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  std::vector<Time> times;
  sim.After(10, [&] {
    times.push_back(sim.Now());
    sim.After(10, [&] { times.push_back(sim.Now()); });
  });
  sim.RunUntil(100);
  EXPECT_EQ(times, (std::vector<Time>{10, 20}));
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.At(50, [] {});
  sim.RunUntil(50);
  Time ran_at = -1;
  sim.At(10, [&] { ran_at = sim.Now(); });  // in the past
  sim.RunUntil(60);
  EXPECT_EQ(ran_at, 50);
}

TEST(SimulatorTest, RunToCompletionGuardsLivelock) {
  Simulator sim;
  std::function<void()> loop = [&] { sim.After(1, loop); };
  sim.After(1, loop);
  EXPECT_FALSE(sim.RunToCompletion(1000));
}

TEST(SimulatorTest, RunToCompletionDrains) {
  Simulator sim;
  int ran = 0;
  for (int i = 0; i < 10; ++i) sim.At(i, [&] { ++ran; });
  EXPECT_TRUE(sim.RunToCompletion());
  EXPECT_EQ(ran, 10);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int ran = 0;
  sim.At(1, [&] { ++ran; });
  sim.At(2, [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 5; ++i) {
      sim.After(i * 10, [&] { values.push_back(sim.rng().Next()); });
    }
    sim.RunUntil(1000);
    return values;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(SimulatorTest, ResetDropsPending) {
  Simulator sim;
  int ran = 0;
  sim.At(10, [&] { ++ran; });
  sim.Reset();
  sim.RunUntil(100);
  EXPECT_EQ(ran, 0);
}

}  // namespace
}  // namespace paxi
