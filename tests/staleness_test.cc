// Bounded-staleness checker unit tests plus the relaxed-consistency Paxos
// mode (the paper's §7 future-work direction) end to end.

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "checker/staleness.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace paxi {
namespace {

OpRecord Write(Key key, const Value& v, Time invoke, Time response) {
  OpRecord op;
  op.is_write = true;
  op.key = key;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.found = true;
  return op;
}

OpRecord Read(Key key, const Value& v, Time invoke, Time response,
              bool found = true, int read_mode = 0) {
  OpRecord op;
  op.is_write = false;
  op.key = key;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.found = found;
  op.read_mode = read_mode;
  return op;
}

TEST(StalenessCheckerTest, FreshReadsHaveZeroStaleness) {
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Read(1, "a", 20, 30)};
  const auto report = CheckBoundedStaleness(ops, 0);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 0);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.stale_reads(), 0u);
}

TEST(StalenessCheckerTest, QuantifiesStaleRead) {
  // "a" was overwritten by "b" at t=30; the read starts at t=100 and still
  // sees "a": staleness = 100 - 30 = 70.
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Write(1, "b", 20, 30),
                               Read(1, "a", 100, 110)};
  const auto report = CheckBoundedStaleness(ops, /*bound=*/80);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 70);
  EXPECT_TRUE(report.violations.empty());  // within the bound
  EXPECT_EQ(report.stale_reads(), 1u);
  EXPECT_EQ(report.max_staleness(), 70);

  const auto strict = CheckBoundedStaleness(ops, /*bound=*/50);
  EXPECT_EQ(strict.violations.size(), 1u);
}

TEST(StalenessCheckerTest, MultipleOverwritesUseEarliest) {
  // Both "b" (t=30) and "c" (t=50) overwrote "a"; staleness counts from
  // the earliest overwrite: 100 - 30 = 70.
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Write(1, "b", 20, 30),
                               Write(1, "c", 40, 50),
                               Read(1, "a", 100, 110)};
  const auto report = CheckBoundedStaleness(ops, 1000);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 70);
}

TEST(StalenessCheckerTest, NotFoundStalenessFromOldestWrite) {
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10),
                               Read(1, "", 60, 70, /*found=*/false)};
  const auto report = CheckBoundedStaleness(ops, /*bound=*/40);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 50);
  EXPECT_EQ(report.violations.size(), 1u);
}

TEST(StalenessCheckerTest, PhantomValueAlwaysViolates) {
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10),
                               Read(1, "ghost", 20, 30)};
  const auto report = CheckBoundedStaleness(ops, 1'000'000);
  EXPECT_EQ(report.violations.size(), 1u);
}

TEST(StalenessCheckerTest, ConcurrentWriteDoesNotCount) {
  // "b" overlaps the read: not a completed overwrite, so reading "a" is
  // fresh.
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Write(1, "b", 20, 200),
                               Read(1, "a", 100, 110)};
  const auto report = CheckBoundedStaleness(ops, 0);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.stale_reads(), 0u);
}

// --- Mode-aware classification -----------------------------------------------

TEST(ReadModeCheckerTest, RoutesEachModeToItsContract) {
  // The same stale read is an anomaly under the strict contract and merely
  // bounded staleness under the relaxed one — the declared mode decides
  // which contract judges it.
  const std::vector<OpRecord> history = {Write(1, "a", 0, 10),
                                         Write(1, "b", 20, 30)};
  for (int mode : {0, 1, 2}) {
    std::vector<OpRecord> ops = history;
    ops.push_back(Read(1, "a", 100, 110, /*found=*/true, mode));
    const auto modes = CheckReadModes(ops, /*relaxed_bound=*/kSecond);
    EXPECT_EQ(modes.reads_by_mode[mode], 1u);
    EXPECT_EQ(modes.strict_anomalies.size(), 1u)
        << "mode " << mode << " is a strict mode; the stale read must land "
        << "in strict_anomalies";
    EXPECT_TRUE(modes.relaxed.violations.empty());
    EXPECT_FALSE(modes.ok());
  }
  std::vector<OpRecord> ops = history;
  ops.push_back(Read(1, "a", 100, 110, /*found=*/true, /*read_mode=*/3));
  const auto modes = CheckReadModes(ops, /*relaxed_bound=*/kSecond);
  EXPECT_EQ(modes.reads_by_mode[3], 1u);
  EXPECT_TRUE(modes.strict_anomalies.empty())
      << "a declared-relaxed read must not be judged by the strict contract";
  EXPECT_TRUE(modes.ok()) << "70us of staleness is within the 1s bound";

  const auto tight = CheckReadModes(ops, /*relaxed_bound=*/50);
  EXPECT_FALSE(tight.ok()) << "beyond its declared bound the relaxed read "
                              "is a violation too";
}

TEST(ReadModeCheckerTest, UnknownModeIsRejectedOutright) {
  // A read labeled with a mode nobody declared is never silently
  // accepted, fresh or not.
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10),
                               Read(1, "a", 20, 30, /*found=*/true,
                                    /*read_mode=*/7)};
  const auto modes = CheckReadModes(ops, kSecond);
  ASSERT_EQ(modes.unlabeled.size(), 1u);
  EXPECT_FALSE(modes.ok());
}

// --- End to end: Paxos with relaxed local reads ------------------------------

TEST(LocalReadsTest, FollowerServesReadLocally) {
  Config cfg = Config::Lan9("paxos");
  cfg.params["local_reads"] = "true";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "v1", cluster.leader()).status.ok());
  cluster.RunFor(kSecond);  // heartbeat pushes the watermark to followers

  // Ask a follower directly: served without touching the leader.
  const std::size_t leader_msgs_before =
      cluster.node(cluster.leader())->messages_processed();
  auto get = GetAndWait(cluster, client, 1, NodeId{1, 6});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");
  EXPECT_EQ(cluster.node(cluster.leader())->messages_processed(),
            leader_msgs_before);
}

TEST(LocalReadsTest, StalenessBoundedByHeartbeat) {
  Config cfg = Config::Lan9("paxos");
  cfg.params["local_reads"] = "true";
  cfg.params["heartbeat_ms"] = "50";
  cfg.params["spread_clients"] = "true";
  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/20, /*write_ratio=*/0.3);
  options.clients_per_zone = 6;
  options.duration_s = 1.5;
  options.warmup_s = 0.3;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  ASSERT_GT(result.completed, 500u);

  // Local reads are NOT linearizable (that is the point) ...
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  EXPECT_FALSE(lin.Check().empty());

  // ... but staleness stays within a couple of heartbeats + delivery.
  const auto report =
      CheckBoundedStaleness(result.ops, /*bound=*/200 * kMillisecond);
  EXPECT_GT(report.stale_reads(), 0u);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.size() << " of " << report.read_staleness.size()
      << " reads exceeded the bound; max staleness "
      << ToMillis(report.max_staleness()) << " ms";

  // Every one of those replies is labeled kRelaxedLocal, so the
  // mode-aware classifier judges them by the relaxed contract and the
  // weaker mode is never silently accepted as linearizable.
  const auto modes = CheckReadModes(result.ops, 200 * kMillisecond);
  EXPECT_GT(modes.reads_by_mode[3], 0u);
  EXPECT_EQ(modes.strict_reads(), 0u)
      << "a relaxed deployment emitted a read claiming a strict mode";
  EXPECT_TRUE(modes.ok());
}

TEST(LocalReadsTest, LinearizableModeStaysClean) {
  // Control: without local reads the same workload has no stale reads.
  Config cfg = Config::Lan9("paxos");
  BenchOptions options;
  options.workload = UniformWorkload(20, 0.3);
  options.clients_per_zone = 6;
  options.duration_s = 1.0;
  options.warmup_s = 0.3;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  const auto report = CheckBoundedStaleness(result.ops, 0);
  EXPECT_EQ(report.stale_reads(), 0u);

  // And mode-aware: every read declares kFull and the strict contract holds.
  const auto modes = CheckReadModes(result.ops, 0);
  EXPECT_EQ(modes.reads_by_mode[3], 0u);
  EXPECT_EQ(modes.reads_by_mode[1], 0u);
  EXPECT_EQ(modes.reads_by_mode[2], 0u);
  EXPECT_GT(modes.reads_by_mode[0], 0u);
  EXPECT_TRUE(modes.ok());
}

}  // namespace
}  // namespace paxi
