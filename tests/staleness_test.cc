// Bounded-staleness checker unit tests plus the relaxed-consistency Paxos
// mode (the paper's §7 future-work direction) end to end.

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "checker/staleness.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace paxi {
namespace {

OpRecord Write(Key key, const Value& v, Time invoke, Time response) {
  OpRecord op;
  op.is_write = true;
  op.key = key;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.found = true;
  return op;
}

OpRecord Read(Key key, const Value& v, Time invoke, Time response,
              bool found = true) {
  OpRecord op;
  op.is_write = false;
  op.key = key;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  op.found = found;
  return op;
}

TEST(StalenessCheckerTest, FreshReadsHaveZeroStaleness) {
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Read(1, "a", 20, 30)};
  const auto report = CheckBoundedStaleness(ops, 0);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 0);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.stale_reads(), 0u);
}

TEST(StalenessCheckerTest, QuantifiesStaleRead) {
  // "a" was overwritten by "b" at t=30; the read starts at t=100 and still
  // sees "a": staleness = 100 - 30 = 70.
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Write(1, "b", 20, 30),
                               Read(1, "a", 100, 110)};
  const auto report = CheckBoundedStaleness(ops, /*bound=*/80);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 70);
  EXPECT_TRUE(report.violations.empty());  // within the bound
  EXPECT_EQ(report.stale_reads(), 1u);
  EXPECT_EQ(report.max_staleness(), 70);

  const auto strict = CheckBoundedStaleness(ops, /*bound=*/50);
  EXPECT_EQ(strict.violations.size(), 1u);
}

TEST(StalenessCheckerTest, MultipleOverwritesUseEarliest) {
  // Both "b" (t=30) and "c" (t=50) overwrote "a"; staleness counts from
  // the earliest overwrite: 100 - 30 = 70.
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Write(1, "b", 20, 30),
                               Write(1, "c", 40, 50),
                               Read(1, "a", 100, 110)};
  const auto report = CheckBoundedStaleness(ops, 1000);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 70);
}

TEST(StalenessCheckerTest, NotFoundStalenessFromOldestWrite) {
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10),
                               Read(1, "", 60, 70, /*found=*/false)};
  const auto report = CheckBoundedStaleness(ops, /*bound=*/40);
  ASSERT_EQ(report.read_staleness.size(), 1u);
  EXPECT_EQ(report.read_staleness[0], 50);
  EXPECT_EQ(report.violations.size(), 1u);
}

TEST(StalenessCheckerTest, PhantomValueAlwaysViolates) {
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10),
                               Read(1, "ghost", 20, 30)};
  const auto report = CheckBoundedStaleness(ops, 1'000'000);
  EXPECT_EQ(report.violations.size(), 1u);
}

TEST(StalenessCheckerTest, ConcurrentWriteDoesNotCount) {
  // "b" overlaps the read: not a completed overwrite, so reading "a" is
  // fresh.
  std::vector<OpRecord> ops = {Write(1, "a", 0, 10), Write(1, "b", 20, 200),
                               Read(1, "a", 100, 110)};
  const auto report = CheckBoundedStaleness(ops, 0);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.stale_reads(), 0u);
}

// --- End to end: Paxos with relaxed local reads ------------------------------

TEST(LocalReadsTest, FollowerServesReadLocally) {
  Config cfg = Config::Lan9("paxos");
  cfg.params["local_reads"] = "true";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "v1", cluster.leader()).status.ok());
  cluster.RunFor(kSecond);  // heartbeat pushes the watermark to followers

  // Ask a follower directly: served without touching the leader.
  const std::size_t leader_msgs_before =
      cluster.node(cluster.leader())->messages_processed();
  auto get = GetAndWait(cluster, client, 1, NodeId{1, 6});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");
  EXPECT_EQ(cluster.node(cluster.leader())->messages_processed(),
            leader_msgs_before);
}

TEST(LocalReadsTest, StalenessBoundedByHeartbeat) {
  Config cfg = Config::Lan9("paxos");
  cfg.params["local_reads"] = "true";
  cfg.params["heartbeat_ms"] = "50";
  cfg.params["spread_clients"] = "true";
  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/20, /*write_ratio=*/0.3);
  options.clients_per_zone = 6;
  options.duration_s = 1.5;
  options.warmup_s = 0.3;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  ASSERT_GT(result.completed, 500u);

  // Local reads are NOT linearizable (that is the point) ...
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  EXPECT_FALSE(lin.Check().empty());

  // ... but staleness stays within a couple of heartbeats + delivery.
  const auto report =
      CheckBoundedStaleness(result.ops, /*bound=*/200 * kMillisecond);
  EXPECT_GT(report.stale_reads(), 0u);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.size() << " of " << report.read_staleness.size()
      << " reads exceeded the bound; max staleness "
      << ToMillis(report.max_staleness()) << " ms";
}

TEST(LocalReadsTest, LinearizableModeStaysClean) {
  // Control: without local reads the same workload has no stale reads.
  Config cfg = Config::Lan9("paxos");
  BenchOptions options;
  options.workload = UniformWorkload(20, 0.3);
  options.clients_per_zone = 6;
  options.duration_s = 1.0;
  options.warmup_s = 0.3;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  const auto report = CheckBoundedStaleness(result.ops, 0);
  EXPECT_EQ(report.stale_reads(), 0u);
}

}  // namespace
}  // namespace paxi
