#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "gtest/gtest.h"
#include "mc/explorer.h"
#include "mc/linearizability.h"
#include "mc/scenario.h"
#include "mc/universe.h"
#include "protocols/paxos/paxos.h"
#include "store/wal.h"

namespace paxi {
namespace {

McOp Put(Key key, const Value& value, int client_index = 0,
         int after_step = 0) {
  McOp op;
  op.kind = McOp::Kind::kPut;
  op.key = key;
  op.value = value;
  op.client_index = client_index;
  op.after_step = after_step;
  return op;
}

McOp Get(Key key, int client_index = 0, int after_step = 0) {
  McOp op;
  op.kind = McOp::Kind::kGet;
  op.key = key;
  op.client_index = client_index;
  op.after_step = after_step;
  return op;
}

// --- McUniverse --------------------------------------------------------------

TEST(McUniverseTest, ParksInitialClientRequest) {
  McScenario scenario;
  scenario.ops = {Put(1, "x")};
  McUniverse universe(scenario);
  // The client's request left its socket at t=0 and was intercepted; the
  // clock never moved and nothing was delivered.
  EXPECT_FALSE(universe.parked().empty());
  EXPECT_EQ(universe.steps_applied(), 0);
  EXPECT_TRUE(universe.violations().empty());
  ASSERT_EQ(universe.op_records().size(), 1u);
  EXPECT_EQ(universe.op_records()[0].issued_step, 0);
  EXPECT_EQ(universe.op_records()[0].completed_step, -1);
}

TEST(McUniverseTest, HandScheduledDeliveryCompletesAnOp) {
  // Drive one schedule by hand: always deliver the oldest parked message,
  // let timers fire when the network is quiet. A 3-node paxos must commit
  // the put well within the budget.
  McScenario scenario;
  scenario.ops = {Put(1, "x")};
  McUniverse universe(scenario);
  for (int step = 0; step < 400; ++step) {
    if (universe.op_records()[0].completed_step >= 0) break;
    if (!universe.parked().empty()) {
      universe.DeliverParked(universe.parked().front().id);
    } else if (universe.timer_steps_left() > 0 && universe.HasPendingEvents()) {
      universe.AdvanceTimer();
    } else {
      break;
    }
  }
  ASSERT_GE(universe.op_records()[0].completed_step, 0)
      << "put never completed under the FIFO hand schedule";
  EXPECT_TRUE(universe.op_records()[0].reply.status.ok());
  EXPECT_TRUE(universe.violations().empty());
}

TEST(McUniverseTest, StateDigestIsDeterministicAcrossRebuilds) {
  McScenario scenario;
  scenario.ops = {Put(1, "x"), Put(1, "y", /*client_index=*/1)};
  McUniverse a(scenario);
  McUniverse b(scenario);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  ASSERT_FALSE(a.parked().empty());
  // Same choice, same resulting fingerprint — the replay guarantee the
  // whole explorer rests on.
  a.DeliverParked(a.parked().front().id);
  b.DeliverParked(b.parked().front().id);
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(McUniverseTest, DropConsumesBudget) {
  McScenario scenario;
  scenario.ops = {Put(1, "x")};
  scenario.max_drops = 1;
  McUniverse universe(scenario);
  ASSERT_FALSE(universe.parked().empty());
  EXPECT_EQ(universe.drops_left(), 1);
  universe.DropParked(universe.parked().front().id);
  EXPECT_EQ(universe.drops_left(), 0);
}

TEST(McUniverseTest, CrashWindowGating) {
  McScenario scenario;
  scenario.ops = {Put(1, "x")};
  McCrash crash;
  crash.node = NodeId{1, 1};
  crash.min_step = 1;
  crash.max_step = 2;
  scenario.crashes = {crash};
  McUniverse universe(scenario);
  EXPECT_FALSE(universe.CrashEnabled(0)) << "before min_step";
  ASSERT_FALSE(universe.parked().empty());
  universe.DeliverParked(universe.parked().front().id);
  EXPECT_TRUE(universe.CrashEnabled(0));
  universe.InjectCrash(0);
  EXPECT_FALSE(universe.CrashEnabled(0)) << "one shot per trace";
  EXPECT_FALSE(universe.cluster().transport().IsRegistered(NodeId{1, 1}));
}

// --- Linearizability checker -------------------------------------------------

using OpRecord = McUniverse::OpRecord;

OpRecord Done(McOp op, int issued, int completed, Status status,
              const Value& value = "", bool found = false) {
  OpRecord r;
  r.op = op;
  r.issued_step = issued;
  r.completed_step = completed;
  r.reply.status = status;
  r.reply.value = value;
  r.reply.found = found;
  return r;
}

OpRecord Pending(McOp op, int issued) {
  OpRecord r;
  r.op = op;
  r.issued_step = issued;
  return r;
}

TEST(LinearizabilityTest, SequentialHistoryAccepted) {
  std::vector<OpRecord> h = {
      Done(Put(1, "a"), 0, 2, Status::Ok()),
      Done(Get(1), 3, 5, Status::Ok(), "a", true),
  };
  std::string error;
  EXPECT_TRUE(CheckLinearizability(h, &error)) << error;
}

TEST(LinearizabilityTest, StaleReadRejected) {
  // put(a) and put(b) complete strictly in order; a later get that still
  // observes "a" has no valid linearization point.
  std::vector<OpRecord> h = {
      Done(Put(1, "a"), 0, 1, Status::Ok()),
      Done(Put(1, "b"), 2, 3, Status::Ok()),
      Done(Get(1), 4, 5, Status::Ok(), "a", true),
  };
  std::string error;
  EXPECT_FALSE(CheckLinearizability(h, &error));
  EXPECT_NE(error.find("key 1"), std::string::npos) << error;
}

TEST(LinearizabilityTest, LostCompletedWriteRejected) {
  // A read that misses a completed earlier write is a violation even
  // though the register "looks" consistent.
  std::vector<OpRecord> h = {
      Done(Put(1, "a"), 0, 1, Status::Ok()),
      Done(Get(1), 2, 3, Status::NotFound()),
  };
  std::string error;
  EXPECT_FALSE(CheckLinearizability(h, &error));
}

TEST(LinearizabilityTest, ConcurrentWritesAdmitEitherOrder) {
  // Two overlapping puts: a subsequent get may observe either one.
  for (const char* observed : {"a", "b"}) {
    std::vector<OpRecord> h = {
        Done(Put(1, "a", 0), 0, 3, Status::Ok()),
        Done(Put(1, "b", 1), 1, 3, Status::Ok()),
        Done(Get(1), 4, 5, Status::Ok(), observed, true),
    };
    std::string error;
    EXPECT_TRUE(CheckLinearizability(h, &error))
        << "reading " << observed << ": " << error;
  }
}

TEST(LinearizabilityTest, UnansweredPutMayOrMayNotTakeEffect) {
  // A put with no response may have landed (read sees it) or not (read
  // sees the prior value); both histories linearize.
  for (bool landed : {true, false}) {
    std::vector<OpRecord> h = {
        Done(Put(1, "a"), 0, 1, Status::Ok()),
        Pending(Put(1, "b"), 2),
        Done(Get(1), 3, 4, Status::Ok(), landed ? "b" : "a", true),
    };
    std::string error;
    EXPECT_TRUE(CheckLinearizability(h, &error)) << error;
  }
}

TEST(LinearizabilityTest, TimedOutPutTreatedAsIncomplete) {
  // The client gave up, but the command may still commit afterwards.
  std::vector<OpRecord> h = {
      Done(Put(1, "a"), 0, 1, Status::TimedOut()),
      Done(Get(1), 2, 3, Status::Ok(), "a", true),
  };
  std::string error;
  EXPECT_TRUE(CheckLinearizability(h, &error)) << error;
}

TEST(LinearizabilityTest, KeysAreIndependent) {
  std::vector<OpRecord> h = {
      Done(Put(1, "a"), 0, 1, Status::Ok()),
      Done(Put(2, "z"), 2, 3, Status::Ok()),
      Done(Get(1), 4, 5, Status::Ok(), "a", true),
      Done(Get(2), 4, 5, Status::Ok(), "z", true),
  };
  std::string error;
  EXPECT_TRUE(CheckLinearizability(h, &error)) << error;
}

// --- Exploration: clean protocols --------------------------------------------

/// Bounded-but-deep exploration used by the per-protocol clean runs.
McBudget CleanBudget() {
  McBudget budget;
  budget.max_executions = 30'000;
  budget.max_states = 400'000;
  budget.max_depth = 60;
  budget.max_events = 30'000'000;
  return budget;
}

TEST(ExploreTest, TinyPaxosIsExhaustivelyClean) {
  // Small enough to finish the whole tree: one put, no drops, few timers.
  McScenario scenario;
  scenario.ops = {Put(1, "x")};
  scenario.max_drops = 0;
  scenario.max_timer_steps = 6;
  const McResult result = Explore(scenario, CleanBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  EXPECT_FALSE(result.budget_exhausted) << "tiny tree should complete";
  EXPECT_GT(result.stats.executions, 0u);
  EXPECT_GT(result.stats.distinct_states, 0u);
}

TEST(ExploreTest, PaxosConcurrentWritesExhaustivelyClean) {
  // Two clients racing on one key, one allowed message loss: the whole
  // reduced tree completes (~57k distinct states) with zero violations.
  // This run alone clears the 10k-state bar the checker is held to.
  McScenario scenario;
  scenario.ops = {Put(1, "x"), Put(1, "y", /*client_index=*/1)};
  scenario.max_drops = 1;
  scenario.max_timer_steps = 8;
  const McResult result = Explore(scenario, CleanBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  EXPECT_FALSE(result.budget_exhausted);
  // Both reductions must be earning their keep on a branching scenario.
  EXPECT_GT(result.stats.dedup_hits, 0u);
  EXPECT_GT(result.stats.sleep_skips, 0u);
  EXPECT_GE(result.stats.distinct_states, 10'000u);
}

TEST(ExploreTest, RaftSingleWriteExhaustivelyClean) {
  // One write, one allowed loss: raft's full reduced tree (~21k states,
  // leader elections included via timer steps) completes violation-free.
  McScenario scenario;
  scenario.protocol = "raft";
  scenario.ops = {Put(1, "x")};
  scenario.max_drops = 1;
  scenario.max_timer_steps = 8;
  const McResult result = Explore(scenario, CleanBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GE(result.stats.distinct_states, 10'000u);
}

TEST(ExploreTest, EPaxosSingleWriteExhaustivelyClean) {
  // EPaxos quiesces quickly without conflicts — a small but fully
  // explored tree.
  McScenario scenario;
  scenario.protocol = "epaxos";
  scenario.ops = {Put(1, "x")};
  scenario.max_drops = 1;
  scenario.max_timer_steps = 8;
  const McResult result = Explore(scenario, CleanBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GE(result.stats.distinct_states, 100u);
}

/// Budget for the bounded two-writer raft/epaxos sweeps: deep enough to
/// cross 60k distinct states in a few seconds, small enough for tier-1.
McBudget BoundedBudget() {
  McBudget budget = CleanBudget();
  budget.max_states = 60'000;
  return budget;
}

TEST(ExploreTest, RaftConcurrentWritesCleanWithinBudget) {
  McScenario scenario;
  scenario.protocol = "raft";
  scenario.ops = {Put(1, "x"), Put(1, "y", /*client_index=*/1)};
  scenario.max_drops = 1;
  scenario.max_timer_steps = 8;
  const McResult result = Explore(scenario, BoundedBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  EXPECT_GE(result.stats.distinct_states, 10'000u);
}

TEST(ExploreTest, EPaxosConcurrentWritesCleanWithinBudget) {
  // Two interfering commands exercise the dependency/sequence machinery;
  // the full tree is astronomical, so this is a bounded frontier sweep.
  McScenario scenario;
  scenario.protocol = "epaxos";
  scenario.ops = {Put(1, "x"), Put(1, "y", /*client_index=*/1)};
  scenario.max_drops = 1;
  scenario.max_timer_steps = 8;
  const McResult result = Explore(scenario, BoundedBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  EXPECT_GE(result.stats.distinct_states, 10'000u);
}

TEST(ExploreTest, DepthBudgetTruncatesInsteadOfDiverging) {
  McScenario scenario;
  scenario.ops = {Put(1, "x"), Put(1, "y", /*client_index=*/1)};
  McBudget budget = CleanBudget();
  budget.max_depth = 6;  // far too shallow to commit anything
  const McResult result = Explore(scenario, budget);
  EXPECT_FALSE(result.violation_found);
  EXPECT_GT(result.stats.truncated_depth, 0u);
}

// --- Durable storage under the checker ----------------------------------------

/// Durable 3-node paxos: one put, one crash-restart of the initial
/// leader from its surviving WAL. In zero-cost universes every group
/// commit is still a *future* timer event (SyncDuration >= 1us), so the
/// checker naturally reaches states where a record is appended but not
/// yet sync-durable — injecting the crash there explores crash-between-
/// append-and-sync, advancing the timer first explores the synced
/// outcome.
McScenario DurableCrashScenario() {
  McScenario scenario;
  scenario.params["durable"] = "1";
  scenario.ops = {Put(1, "x")};
  scenario.max_drops = 0;
  scenario.max_timer_steps = 60;
  McCrash crash;
  crash.node = NodeId{1, 1};
  crash.mode = Cluster::RestartMode::kDurable;
  crash.downtime = 50 * kMillisecond;
  crash.min_step = 0;
  crash.max_step = 30;
  scenario.crashes = {crash};
  return scenario;
}

/// FIFO hand schedule: deliver the oldest parked message; when the
/// network is quiet, advance timers. Stops when `done` returns true or
/// the choice budgets run dry.
template <typename Pred>
void DriveUntil(McUniverse& universe, Pred done, int max_steps = 600) {
  for (int step = 0; step < max_steps; ++step) {
    if (done()) return;
    if (!universe.parked().empty()) {
      universe.DeliverParked(universe.parked().front().id);
    } else if (universe.timer_steps_left() > 0 && universe.HasPendingEvents()) {
      universe.AdvanceTimer();
    } else {
      return;
    }
  }
}

TEST(McUniverseTest, DurableCrashGoldenScheduleBothOutcomes) {
  // The golden durable-crash schedule, driven by hand in two universes
  // that diverge at exactly one choice. Both run the FIFO schedule until
  // the victim has appended a WAL record whose group-commit sync is
  // still pending — the window the WAL's ack rule exists for. Universe
  // `lost` injects the crash inside that window: the unsynced tail dies
  // with the node and recovery replays the shorter durable prefix.
  // Universe `kept` lets the sync land first: the record survives the
  // crash and recovery replays it. Neither outcome may trip the auditor
  // and both histories must linearize — losing an unacknowledged suffix
  // is crash-consistent; losing an acknowledged record would not be.
  const NodeId victim{1, 1};
  const auto sync_window_open = [&victim](McUniverse& u) {
    const NodeDisk* disk = u.cluster().disk(victim);
    return disk->log_bytes() > disk->durable_bytes();
  };

  McUniverse lost(DurableCrashScenario());
  ASSERT_NE(lost.cluster().disk(victim), nullptr)
      << "scenario did not build a durable cluster";
  DriveUntil(lost, [&] { return sync_window_open(lost); });
  ASSERT_TRUE(sync_window_open(lost))
      << "appended-but-unsynced window never reached";
  const std::size_t durable_before = lost.cluster().disk(victim)->durable_bytes();
  ASSERT_TRUE(lost.CrashEnabled(0));
  lost.InjectCrash(0);
  // The unsynced tail died on the medium at the crash instant; only the
  // sync-durable prefix remains for replay.
  EXPECT_EQ(lost.cluster().disk(victim)->log_bytes(), durable_before);

  McUniverse kept(DurableCrashScenario());
  DriveUntil(kept, [&] { return sync_window_open(kept); });
  ASSERT_TRUE(sync_window_open(kept));
  // Same state, different choice: advance timers until the group commit
  // lands, then crash.
  for (int i = 0; i < 50 && sync_window_open(kept); ++i) {
    ASSERT_TRUE(kept.HasPendingEvents() && kept.timer_steps_left() > 0);
    kept.AdvanceTimer();
  }
  ASSERT_FALSE(sync_window_open(kept)) << "group commit never landed";
  const std::size_t durable_kept = kept.cluster().disk(victim)->durable_bytes();
  EXPECT_GT(durable_kept, durable_before)
      << "the sync should have advanced the durable frontier";
  ASSERT_TRUE(kept.CrashEnabled(0));
  kept.InjectCrash(0);
  EXPECT_EQ(kept.cluster().disk(victim)->log_bytes(), durable_kept);

  for (McUniverse* u : {&lost, &kept}) {
    DriveUntil(*u, [u] { return u->op_records()[0].completed_step >= 0; });
    EXPECT_GE(u->cluster().disk(victim)->stats().recoveries, 1u)
        << "victim never replayed its WAL";
    EXPECT_TRUE(u->violations().empty())
        << (u->violations().empty() ? "" : u->violations()[0]);
    std::string error;
    EXPECT_TRUE(CheckLinearizability(u->op_records(), &error)) << error;
    EXPECT_GE(u->op_records()[0].completed_step, 0)
        << "put never completed after the durable restart";
  }
}

TEST(ExploreTest, PaxosDurableCrashCleanWithinBudget) {
  // Systematic sweep of the same family: every interleaving of message
  // deliveries, group-commit syncs, and the crash choice — including
  // crashes between append and sync — must keep the auditor silent.
  McScenario scenario = DurableCrashScenario();
  scenario.max_timer_steps = 16;
  const McResult result = Explore(scenario, BoundedBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  EXPECT_GT(result.stats.executions, 0u);
  EXPECT_GE(result.stats.distinct_states, 1'000u);
}

// --- Exploration: mutation validation ----------------------------------------

/// The golden counterexample scenario for the reintroduced PR-2 watermark
/// bug (protocols/paxos/paxos.cc, PAXI_MC_MUTATION). The schedule family
/// it encodes: leader B proposes x but both P2a copies are lost, so x
/// lives only in B's own log; B crash-restarts *durably* (log intact,
/// fail-recover model — no amnesia, so clean Paxos is genuinely sound
/// here). While B is down, C's election timer fires first (A's clock is
/// skewed slow), C is elected through the x-free quorum {C, A} and
/// commits y in x's slot. When B rejoins, C's heartbeat carries the
/// commit watermark over the slot where B still holds stale x accepted
/// under the old ballot: the clean build treats the ballot-mismatched
/// entry as a hole and catches up (serving y); the mutated build commits
/// x in place, and the auditor's chosen-value cross-check reports the
/// divergence. spread_clients routes the first op's client at B (the
/// initial leader) and the second at C directly, so the y proposal does
/// not depend on forwarding through the crashed node.
McScenario MutationScenario() {
  McScenario scenario;
  scenario.params["leader"] = "1.2";
  scenario.params["spread_clients"] = "true";
  scenario.ops = {Put(1, "x"),
                  Put(1, "y", /*client_index=*/1, /*after_step=*/10)};
  McCrash crash;
  crash.node = NodeId{1, 2};
  crash.mode = Cluster::RestartMode::kDurable;
  crash.downtime = 800 * kMillisecond;
  crash.min_step = 2;
  crash.max_step = 6;
  scenario.crashes = {crash};
  scenario.clock_skew[NodeId{1, 1}] = 3.0;
  scenario.max_drops = 2;
  scenario.max_timer_steps = 8;
  return scenario;
}

McBudget MutationBudget() {
  McBudget budget;
  budget.max_executions = 20'000;
  budget.max_states = 300'000;
  budget.max_depth = 60;
  budget.max_events = 40'000'000;
  return budget;
}

TEST(MutationTest, CleanBuildSurvivesTheGoldenScenario) {
  if (PaxosMutationCompiledIn()) {
    GTEST_SKIP() << "mutation build: the bug is compiled in by design";
  }
  const McResult result = Explore(MutationScenario(), MutationBudget());
  EXPECT_FALSE(result.violation_found)
      << (result.violations.empty() ? "" : result.violations[0]);
  // The scenario is small enough to finish: this is an exhaustive
  // soundness check of the real watermark/catch-up path under message
  // loss and a durable leader crash-restart, not a sample.
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_GE(result.stats.distinct_states, 20'000u);
}

TEST(MutationTest, ExplorerFindsTheWatermarkBug) {
  if (!PaxosMutationCompiledIn()) {
    GTEST_SKIP() << "requires -DPAXI_MC_MUTATION=ON (mutation-validation CI "
                    "job)";
  }
  const McResult result = Explore(MutationScenario(), MutationBudget());
  ASSERT_TRUE(result.violation_found)
      << "explorer failed to find the reintroduced watermark bug "
      << "(executions=" << result.stats.executions
      << " states=" << result.stats.distinct_states << ")";
  // The counterexample must be a concrete, replayable schedule ending in
  // an agreement violation (two nodes choosing different values for the
  // same slot).
  EXPECT_FALSE(result.schedule.empty());
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations[0].find("agreement violation"),
            std::string::npos)
      << result.violations[0];
}

}  // namespace
}  // namespace paxi
