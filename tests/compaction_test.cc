// Snapshotting / log-compaction subsystem tests: store snapshot
// round-trips, LogStorage policy + truncation, auditor digest
// cross-checks across snapshot boundaries, the paxos backlog cap, and the
// end-to-end bounded-memory guarantees — log length stays ~flat in
// history length, restart TTR does not grow with the command count, and
// snapshot-based state transfer stays linearizable under nemeses
// (compaction during partitions, interrupted/duplicated installs).

#include <cstdlib>
#include <string>
#include <vector>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "fault/nemesis.h"
#include "fault/schedule.h"
#include "fault/telemetry.h"
#include "gtest/gtest.h"
#include "protocols/epaxos/epaxos.h"
#include "protocols/paxos/paxos.h"
#include "protocols/wpaxos/wpaxos.h"
#include "sim/auditor.h"
#include "store/log_storage.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace paxi {
namespace {

/// Enables the runtime invariant auditor (PAXI_AUDIT=1) for the lifetime
/// of one test; every snapshot taken or installed inside the scope gets
/// its digest cross-checked at the (domain, watermark) granularity.
class ScopedAudit {
 public:
  ScopedAudit() { setenv("PAXI_AUDIT", "1", 1); }
  ~ScopedAudit() { unsetenv("PAXI_AUDIT"); }
};

Command Put(Key key, const Value& value) {
  Command cmd;
  cmd.op = Command::Op::kPut;
  cmd.key = key;
  cmd.value = value;
  cmd.client = 1;
  return cmd;
}

Command Get(Key key) {
  Command cmd;
  cmd.op = Command::Op::kGet;
  cmd.key = key;
  cmd.client = 1;
  return cmd;
}

// ---------------------------------------------------------------------------
// Store snapshots: capture / restore round-trips and digest determinism.
// ---------------------------------------------------------------------------

TEST(StoreSnapshotTest, WholeStoreRoundtripPreservesStateAndHistories) {
  KvStore store;
  std::uint64_t req = 1;
  for (int i = 0; i < 20; ++i) {
    Command cmd = Put(i % 4, "v" + std::to_string(i));
    cmd.request = req++;
    ASSERT_TRUE(store.Execute(cmd).ok());
  }
  Command read = Get(2);
  read.request = req++;
  ASSERT_TRUE(store.Execute(read).ok());

  const StoreSnapshot snap = SnapshotStore(store, /*applied=*/20);
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.applied, 20);
  EXPECT_EQ(snap.num_executed, store.num_executed());
  EXPECT_EQ(snap.keys.size(), 4u);
  EXPECT_NE(snap.digest, 0u);
  EXPECT_GT(snap.ByteSizeEstimate(), 0u);

  KvStore restored;
  RestoreStore(snap, &restored);
  EXPECT_EQ(restored.num_executed(), store.num_executed());
  for (Key key = 0; key < 4; ++key) {
    EXPECT_EQ(restored.Versions(key).size(), store.Versions(key).size());
    EXPECT_EQ(restored.History(key).size(), store.History(key).size());
    EXPECT_EQ(restored.WriteHistory(key).size(),
              store.WriteHistory(key).size());
    ASSERT_TRUE(restored.Get(key).ok());
    EXPECT_EQ(restored.Get(key).value(), store.Get(key).value());
  }
  // The installer re-snapshotting at the same watermark reproduces the
  // digest byte-for-byte — the property the auditor's SnapshotAt checks.
  const StoreSnapshot again = SnapshotStore(restored, 20);
  EXPECT_EQ(again.digest, snap.digest);
}

TEST(StoreSnapshotTest, SingleKeyRoundtripLeavesOtherKeysAlone) {
  KvStore store;
  std::uint64_t req = 1;
  for (int i = 0; i < 6; ++i) {
    Command cmd = Put(7, "a" + std::to_string(i));
    cmd.request = req++;
    ASSERT_TRUE(store.Execute(cmd).ok());
  }
  Command other = Put(9, "other");
  other.request = req++;
  ASSERT_TRUE(store.Execute(other).ok());

  const KeySnapshot snap = SnapshotStoreKey(store, 7, /*applied=*/5);
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.state.key, 7);
  EXPECT_EQ(snap.state.versions.size(), 6u);
  EXPECT_NE(snap.digest, 0u);
  // DigestKeyState fingerprints the state alone; the KeySnapshot digest
  // also binds the applied watermark, so equal states at different
  // watermarks still get distinct snapshot digests.
  EXPECT_NE(SnapshotStoreKey(store, 7, 6).digest, snap.digest);

  KvStore target;
  Command pre = Put(9, "keep-me");
  pre.request = 100;
  ASSERT_TRUE(target.Execute(pre).ok());
  RestoreStoreKey(snap, &target);
  ASSERT_TRUE(target.Get(7).ok());
  EXPECT_EQ(target.Get(7).value(), "a5");
  EXPECT_EQ(target.Versions(7).size(), 6u);
  ASSERT_TRUE(target.Get(9).ok());
  EXPECT_EQ(target.Get(9).value(), "keep-me");
  // Re-deriving the snapshot from the restored state reproduces the
  // digest — the installer-side check SnapshotAt cross-verifies.
  EXPECT_EQ(SnapshotStoreKey(target, 7, 5).digest, snap.digest);
  EXPECT_EQ(DigestKeyState(snap.state),
            DigestKeyState(SnapshotStoreKey(target, 7, 5).state));
}

// ---------------------------------------------------------------------------
// LogStorage: policy trigger, truncation, watermark bookkeeping.
// ---------------------------------------------------------------------------

TEST(LogStorageTest, CompactToDropsPrefixAndAdvancesWatermark) {
  LogStorage<int> log;
  for (Slot s = 0; s < 10; ++s) log[s] = static_cast<int>(s);
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.last_index(), 9);
  EXPECT_EQ(log.snapshot_index(), -1);

  EXPECT_EQ(log.CompactTo(4), 5u);
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.snapshot_index(), 4);
  EXPECT_FALSE(log.contains(4));
  EXPECT_TRUE(log.contains(5));
  EXPECT_EQ(log.total_compacted(), 5u);

  // Regressing the watermark is a no-op (duplicated installs).
  EXPECT_EQ(log.CompactTo(2), 0u);
  EXPECT_EQ(log.snapshot_index(), 4);

  // Compacting everything: last_index falls back to the watermark.
  EXPECT_EQ(log.CompactTo(9), 5u);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.last_index(), 9);
}

TEST(LogStorageTest, PolicyTriggersOnIntervalAndBytes) {
  LogStorage<int> log;
  EXPECT_FALSE(log.policy().enabled());
  EXPECT_FALSE(log.ShouldSnapshot(1000));  // disabled by default

  CompactionPolicy interval_policy;
  interval_policy.interval = 10;
  log.set_policy(interval_policy);
  EXPECT_FALSE(log.ShouldSnapshot(8));
  EXPECT_TRUE(log.ShouldSnapshot(9));  // 9 - (-1) >= 10
  log.CompactTo(9);
  EXPECT_FALSE(log.ShouldSnapshot(9));  // not strictly past the watermark
  EXPECT_FALSE(log.ShouldSnapshot(15));
  EXPECT_TRUE(log.ShouldSnapshot(19));

  CompactionPolicy byte_policy;
  byte_policy.max_bytes = 4 * byte_policy.bytes_per_entry;
  LogStorage<int> bytes_log;
  bytes_log.set_policy(byte_policy);
  for (Slot s = 0; s < 3; ++s) bytes_log[s] = 0;
  EXPECT_FALSE(bytes_log.ShouldSnapshot(2));
  bytes_log[3] = 0;
  EXPECT_TRUE(bytes_log.ShouldSnapshot(3));
}

// ---------------------------------------------------------------------------
// Auditor: snapshot digests are cross-checked at (domain, watermark).
// ---------------------------------------------------------------------------

class FakeAuditable : public Auditable {
 public:
  explicit FakeAuditable(NodeId id) : id_(id) {}
  NodeId id() const override { return id_; }
  void Audit(AuditScope& scope) const override {
    if (report) report(scope);
  }
  std::function<void(AuditScope&)> report;

 private:
  NodeId id_;
};

TEST(AuditorSnapshotTest, MatchingDigestsPassDivergentDigestsTrip) {
  InvariantAuditor auditor(/*fail_fast=*/false);
  FakeAuditable producer(NodeId{1, 1});
  FakeAuditable installer(NodeId{1, 2});
  auditor.Watch(&producer);
  auditor.Watch(&installer);

  producer.report = [](AuditScope& s) { s.SnapshotAt("log", 99, 0xABCDu); };
  installer.report = [](AuditScope& s) { s.SnapshotAt("log", 99, 0xABCDu); };
  auditor.AuditNow();
  EXPECT_TRUE(auditor.violations().empty());

  // Same watermark, different state: exactly the bug snapshots can hide
  // (an install that diverged from the producer's applied prefix).
  installer.report = [](AuditScope& s) { s.SnapshotAt("log", 99, 0xEEEEu); };
  auditor.AuditNow();
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_NE(auditor.violations()[0].find("snapshot"), std::string::npos);
}

TEST(AuditorSnapshotTest, SnapshotAdvancesChosenFrontierPastCompactedSlots) {
  InvariantAuditor auditor(/*fail_fast=*/false);
  FakeAuditable node(NodeId{1, 1});
  auditor.Watch(&node);
  // A node that installed a snapshot at 49 then reports Chosen from 50 on
  // must not trip "gap in chosen reports" style accounting: SnapshotAt
  // advances the frontier past the compacted prefix.
  node.report = [](AuditScope& s) {
    s.SnapshotAt("log", 49, 0x1234u);
    EXPECT_EQ(s.ChosenFrontier("log"), 49);
    s.Chosen("log", 50, 0x5678u);
  };
  auditor.AuditNow();
  EXPECT_TRUE(auditor.violations().empty());
}

// ---------------------------------------------------------------------------
// Paxos backlog cap: a long election must shed, not buffer, the client
// population; shed requests are retryable and complete elsewhere.
// ---------------------------------------------------------------------------

TEST(BacklogCapTest, ElectionBacklogIsCappedAndShedRequestsRetry) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["max_backlog"] = "4";
  cfg.client_timeout = 300 * kMillisecond;
  Cluster cluster(cfg);
  Bootstrap(cluster);

  // Cut {1,3} off from every replica: its phase-1 can never complete, so
  // every request it receives parks (up to the cap) or is shed.
  const NodeId victim{1, 3};
  std::vector<NodeId> rest;
  for (const NodeId& id : cluster.nodes()) {
    if (id != victim) rest.push_back(id);
  }
  cluster.transport().Partition({{victim}, rest}, 30 * kSecond);
  cluster.RunFor(kSecond);  // leader lease on the victim expires

  // One request per client: the session layer admits each client's writes
  // in request-id order, so concurrent pressure needs distinct clients.
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    Command cmd = Put(i, "b" + std::to_string(i));
    cluster.NewClient(1)->Issue(cmd, victim,
                                [&completed](const Client::Reply& r) {
                                  completed += r.status.ok();
                                });
    cluster.RunFor(kMillisecond);
  }
  cluster.RunFor(10 * kSecond);

  auto* parked = dynamic_cast<PaxosReplica*>(cluster.node(victim));
  ASSERT_NE(parked, nullptr);
  EXPECT_LE(parked->backlog_size(), 4u);  // the cap held
  // Shed and timed-out requests retried against reachable replicas; no
  // client is stuck behind the dead node's unbounded queue.
  EXPECT_EQ(completed, 40);
}

// ---------------------------------------------------------------------------
// Acceptance: durable-restart TTR after 10k committed commands is a small
// constant of the TTR after 1k, and with compaction enabled the log at
// every node stays within snapshot interval + in-flight tail.
// ---------------------------------------------------------------------------

struct TtrResult {
  Time ttr = 0;
  std::size_t max_log_entries = 0;       ///< Across all nodes, post-run.
  std::size_t leader_snapshots = 0;
};

TtrResult MeasureDurableRestartTtr(int commands) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["snapshot_interval"] = "100";
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);

  const NodeId leader = cluster.leader();
  for (int i = 0; i < commands; ++i) {
    const auto put =
        PutAndWait(cluster, client, i % 25, "v" + std::to_string(i), leader);
    EXPECT_TRUE(put.status.ok()) << "command " << i;
  }

  TtrResult out;
  for (const NodeId& id : cluster.nodes()) {
    const Node::LogStats stats = cluster.node(id)->GetLogStats();
    out.max_log_entries = std::max(out.max_log_entries, stats.log_entries);
  }
  out.leader_snapshots =
      cluster.node(leader)->GetLogStats().snapshots_taken;

  // Restart the leader — the worst case — and measure how long until a
  // client write completes again through a surviving replica.
  cluster.RestartNode(leader, 300 * kMillisecond,
                      Cluster::RestartMode::kDurable);
  const Time fault_at = cluster.sim().Now();
  const auto probe = PutAndWait(cluster, client, 0, "post-restart",
                                NodeId{1, 2});
  EXPECT_TRUE(probe.status.ok());
  out.ttr = cluster.sim().Now() - fault_at;
  return out;
}

TEST(BoundedRecoveryTest, TtrAndLogLengthFlatInHistoryLength) {
  const TtrResult small = MeasureDurableRestartTtr(1000);
  const TtrResult large = MeasureDurableRestartTtr(10000);

  // Compaction fired throughout and kept every log within one snapshot
  // interval (100) plus the in-flight tail / watermark-propagation lag.
  EXPECT_GE(small.leader_snapshots, 9u);
  EXPECT_GE(large.leader_snapshots, 99u);
  EXPECT_LE(small.max_log_entries, 160u);
  EXPECT_LE(large.max_log_entries, 160u);

  // Ten times the history must not mean ten times the recovery: TTR is
  // bounded by timers + snapshot transfer, not by history replay.
  EXPECT_GT(small.ttr, 0);
  EXPECT_GT(large.ttr, 0);
  EXPECT_LE(large.ttr, 3 * small.ttr + 500 * kMillisecond)
      << "TTR grew with history length: " << small.ttr << "us -> "
      << large.ttr << "us";
}

// ---------------------------------------------------------------------------
// Install-snapshot state transfer: an amnesia-restarted follower relearns
// the compacted prefix via {snapshot, tail}, with producer/installer
// digests cross-checked by the auditor.
// ---------------------------------------------------------------------------

TEST(InstallSnapshotTest, PaxosAmnesiaFollowerInstallsSnapshotAndCatchesUp) {
  ScopedAudit audit;
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["snapshot_interval"] = "100";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);

  for (int i = 0; i < 1200; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, client, i % 25, "v" + std::to_string(i),
                           cluster.leader())
                    .status.ok());
  }
  // By now slot 0 is long compacted everywhere: a reborn follower cannot
  // be served entry-by-entry.
  auto* lead = dynamic_cast<PaxosReplica*>(cluster.node(cluster.leader()));
  ASSERT_NE(lead, nullptr);
  ASSERT_GT(lead->snapshot_index(), 0);

  const NodeId reborn_id{1, 3};
  cluster.RestartNode(reborn_id, 200 * kMillisecond,
                      Cluster::RestartMode::kAmnesia);
  cluster.RunFor(3 * kSecond);

  auto* reborn = dynamic_cast<PaxosReplica*>(cluster.node(reborn_id));
  ASSERT_NE(reborn, nullptr);
  EXPECT_GE(reborn->snapshots_installed(), 1u);
  EXPECT_EQ(reborn->executed_up_to(), lead->committed_up_to());
  // The restored store matches the leader's, history included.
  EXPECT_EQ(reborn->store().WriteHistory(3).size(),
            lead->store().WriteHistory(3).size());
  // Its log is the post-snapshot tail, not the replayed history.
  EXPECT_LE(reborn->GetLogStats().log_entries, 160u);

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
}

TEST(InstallSnapshotTest, WPaxosStealAfterCompactionShipsObjectSnapshot) {
  ScopedAudit audit;
  Config cfg = Config::Wan5("wpaxos", 1);
  cfg.params["fz"] = "0";
  cfg.params["handoff_cooldown_ms"] = "0";
  cfg.params["snapshot_interval"] = "20";
  Cluster cluster(cfg);
  Bootstrap(cluster);

  // Ohio commits well past the per-object compaction interval.
  Client* c2 = cluster.NewClient(2);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, c2, 1, "oh-" + std::to_string(i),
                           NodeId{2, 1})
                    .status.ok());
  }
  auto* old_owner = dynamic_cast<WPaxosReplica*>(cluster.node({2, 1}));
  ASSERT_NE(old_owner, nullptr);
  ASSERT_GT(old_owner->GetLogStats().snapshots_taken, 0u);

  // Blank the Virginia node: acceptors execute the replicated commands
  // too, so only an amnesia restart leaves a stealer that genuinely needs
  // the compacted prefix.
  cluster.RestartNode(NodeId{1, 1}, 200 * kMillisecond,
                      Cluster::RestartMode::kAmnesia);
  cluster.RunFor(kSecond);

  // Virginia steals: the compacted prefix must arrive as an object
  // snapshot in the P1b, or the new owner inherits a hole.
  Client* c1 = cluster.NewClient(1);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, c1, 1, "va-" + std::to_string(i),
                           NodeId{1, 1})
                    .status.ok());
  }
  cluster.RunFor(2 * kSecond);

  auto* new_owner = dynamic_cast<WPaxosReplica*>(cluster.node({1, 1}));
  ASSERT_NE(new_owner, nullptr);
  EXPECT_GE(new_owner->snapshots_installed(), 1u);
  auto get = GetAndWait(cluster, c1, 1, NodeId{1, 1});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "va-5");
  // Full history transferred despite the truncated log.
  EXPECT_EQ(new_owner->store().WriteHistory(1).size(), 66u);

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
}

TEST(InstallSnapshotTest, EPaxosGcCollectsExecutedInstances) {
  Config cfg = Config::Lan9("epaxos");
  cfg.nodes_per_zone = 5;
  cfg.params["snapshot_interval"] = "50";
  Cluster cluster(cfg);

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.3;
  options.warmup_s = 0.0;
  options.duration_s = 3.0;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  ASSERT_GT(result.completed, 500u);

  // Every replica collected instances below the cluster-wide executed
  // frontier; the live instance map is a fraction of the history.
  for (const NodeId& id : cluster.nodes()) {
    auto* replica = dynamic_cast<EPaxosReplica*>(cluster.node(id));
    ASSERT_NE(replica, nullptr);
    EXPECT_GT(replica->instances_gced(), 0u) << id.ToString();
    EXPECT_LT(replica->instances_alive(),
              replica->instances_gced())
        << id.ToString() << ": GC lagging far behind execution";
  }
}

// ---------------------------------------------------------------------------
// Compaction under nemeses: snapshots taken during partitions, installs
// duplicated / reordered / interrupted by crashes — history must stay
// linearizable and the digests consistent. Small snapshot interval so
// every catch-up crosses a compaction boundary.
// ---------------------------------------------------------------------------

struct CompactionNemesisCase {
  std::string protocol;
  BuiltinNemesis nemesis;
  bool include_reorder = false;
  const char* name = "";
};

class CompactionNemesisTest
    : public ::testing::TestWithParam<CompactionNemesisCase> {};

TEST_P(CompactionNemesisTest, StaysSafeWithSmallSnapshotInterval) {
  const CompactionNemesisCase& param = GetParam();
  ScopedAudit audit;
  Config cfg = Config::Lan9(param.protocol);
  cfg.nodes_per_zone = 5;
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.params["snapshot_interval"] = "40";
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  AvailabilityTracker tracker;
  NemesisOptions opts;
  opts.start = kSecond;
  opts.period = 1500 * kMillisecond;
  opts.fault_duration = 600 * kMillisecond;
  opts.horizon = 4 * kSecond;
  opts.seed = 0xC0FFEE;
  opts.include_reorder = param.include_reorder;
  Nemesis nemesis(&cluster,
                  MakeBuiltinSchedule(param.nemesis, cfg.Nodes(),
                                      cluster.leader(), opts),
                  &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.5;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(nemesis.executed(), 0u);
  EXPECT_GT(result.completed, 100u) << param.protocol;
  EXPECT_GE(tracker.MaxTimeToRecovery(), 0) << param.protocol;

  // Compaction actually ran while the nemesis was interfering.
  std::size_t compaction_evidence = 0;
  for (const NodeId& id : cluster.nodes()) {
    const Node* node = cluster.node(id);
    if (node == nullptr) continue;
    const Node::LogStats stats = node->GetLogStats();
    compaction_evidence += stats.snapshots_taken + stats.entries_compacted;
  }
  EXPECT_GT(compaction_evidence, 0u) << param.protocol;

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << param.protocol << ": " << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(
    Nemeses, CompactionNemesisTest,
    ::testing::Values(
        CompactionNemesisCase{"paxos", BuiltinNemesis::kRollingCrashRestart,
                              false, "paxos_rolling_restart"},
        CompactionNemesisCase{"paxos", BuiltinNemesis::kFlakyEverything,
                              true, "paxos_flaky"},
        CompactionNemesisCase{"paxos", BuiltinNemesis::kRandomPartitioner,
                              false, "paxos_partitions"},
        CompactionNemesisCase{"raft", BuiltinNemesis::kRollingCrashRestart,
                              false, "raft_rolling_restart"},
        CompactionNemesisCase{"epaxos", BuiltinNemesis::kFlakyEverything,
                              true, "epaxos_flaky"},
        // Mencius needs FIFO links: flaky/duplicate only (see mencius.h).
        CompactionNemesisCase{"mencius", BuiltinNemesis::kFlakyEverything,
                              false, "mencius_flaky"}),
    [](const ::testing::TestParamInfo<CompactionNemesisCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Every protocol serves traffic through a durable restart with compaction
// enabled, and the availability JSON carries the per-node log gauges.
// ---------------------------------------------------------------------------

struct CompactionRecoveryCase {
  std::string protocol;
  NodeId victim;
  bool grid = false;
};

class CompactionRecoveryTest
    : public ::testing::TestWithParam<CompactionRecoveryCase> {};

TEST_P(CompactionRecoveryTest, DurableRestartWithCompactionStaysSafe) {
  const CompactionRecoveryCase& param = GetParam();
  ScopedAudit audit;
  Config cfg = param.grid ? Config::LanGrid3x3(param.protocol)
                          : Config::Lan9(param.protocol);
  if (!param.grid) cfg.nodes_per_zone = 5;
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.params["snapshot_interval"] = "60";
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  AvailabilityTracker tracker(100 * kMillisecond);
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{
      1500 * kMillisecond,
      FaultAction::Restart(param.victim, 400 * kMillisecond,
                           Cluster::RestartMode::kDurable)});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 100u) << param.protocol;
  const Time ttr = tracker.MaxTimeToRecovery();
  EXPECT_GE(ttr, 0) << param.protocol << ": never recovered";
  EXPECT_LE(ttr, 2500 * kMillisecond) << param.protocol;

  // The runner sampled per-node log gauges into the availability JSON.
  ASSERT_FALSE(tracker.log_gauges().empty()) << param.protocol;
  EXPECT_NE(tracker.ToJson().find("\"log_gauges\":[{"), std::string::npos);

  // Compaction engaged at some replica (snapshots for the log-structured
  // protocols, instance GC for epaxos).
  std::size_t compaction_evidence = 0;
  for (const NodeId& id : cluster.nodes()) {
    const Node* node = cluster.node(id);
    if (node == nullptr) continue;
    const Node::LogStats stats = node->GetLogStats();
    compaction_evidence += stats.snapshots_taken + stats.entries_compacted;
  }
  EXPECT_GT(compaction_evidence, 0u) << param.protocol;

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << param.protocol << ": " << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

// ---------------------------------------------------------------------------
// Durable compaction: the snapshot mark garbage-collects the obsolete WAL
// prefix in lockstep with LogStorage::CompactTo (bounding the on-disk
// footprint), and a post-compaction durable restart recovers from the
// latest snapshot plus the surviving suffix.
// ---------------------------------------------------------------------------

struct WalFootprint {
  std::size_t log_bytes = 0;          ///< Encoded bytes on medium, post-run.
  std::uint64_t bytes_compacted = 0;  ///< Encoded bytes dropped by WAL GC.
};

WalFootprint RunDurablePaxosWorkload(int commands,
                                     const std::string& snapshot_interval) {
  ScopedAudit audit;
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["durable"] = "1";
  cfg.params["snapshot_interval"] = snapshot_interval;
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);

  const NodeId leader = cluster.leader();
  std::string last_key3_value;
  for (int i = 0; i < commands; ++i) {
    const std::string value = "v" + std::to_string(i);
    const auto put = PutAndWait(cluster, client, i % 25, value, leader);
    EXPECT_TRUE(put.status.ok()) << "command " << i;
    if (i % 25 == 3) last_key3_value = value;
  }

  NodeDisk* disk = cluster.disk(leader);
  EXPECT_NE(disk, nullptr);
  WalFootprint out{disk->log_bytes(), disk->stats().bytes_compacted};

  // Durable restart after compaction: replay is snapshot + surviving WAL
  // suffix — the early keys live only in the snapshot by now.
  cluster.RestartNode(leader, 300 * kMillisecond,
                      Cluster::RestartMode::kDurable);
  cluster.RunFor(kSecond);
  EXPECT_GE(disk->stats().recoveries, 1u);
  const auto get = GetAndWait(cluster, client, 3, NodeId{1, 2});
  EXPECT_TRUE(get.status.ok());
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, last_key3_value);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
  return out;
}

TEST(WalCompactionTest, SnapshotMarkTruncatesObsoleteWalPrefix) {
  const WalFootprint compacted = RunDurablePaxosWorkload(600, "50");
  const WalFootprint unbounded = RunDurablePaxosWorkload(600, "0");

  // With snapshots every 50 slots the WAL sheds its prefix repeatedly;
  // without them nothing is ever dropped and the medium holds the entire
  // history.
  EXPECT_GT(compacted.bytes_compacted, 0u);
  EXPECT_EQ(unbounded.bytes_compacted, 0u);
  EXPECT_LT(compacted.log_bytes, unbounded.log_bytes / 2)
      << "compaction left the durable footprint unbounded: "
      << compacted.log_bytes << " vs " << unbounded.log_bytes;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CompactionRecoveryTest,
    ::testing::Values(
        CompactionRecoveryCase{"paxos", NodeId{1, 1}, false},
        CompactionRecoveryCase{"fpaxos", NodeId{1, 1}, false},
        CompactionRecoveryCase{"raft", NodeId{1, 1}, false},
        CompactionRecoveryCase{"mencius", NodeId{1, 2}, false},
        CompactionRecoveryCase{"epaxos", NodeId{1, 2}, false},
        CompactionRecoveryCase{"wpaxos", NodeId{1, 2}, true},
        CompactionRecoveryCase{"wankeeper", NodeId{1, 2}, true},
        CompactionRecoveryCase{"vpaxos", NodeId{1, 2}, true}),
    [](const ::testing::TestParamInfo<CompactionRecoveryCase>& info) {
      return info.param.protocol;
    });

}  // namespace
}  // namespace paxi
