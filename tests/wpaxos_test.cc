#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "protocols/wpaxos/wpaxos.h"
#include "test_util.h"

namespace paxi {
namespace {

WPaxosReplica* Replica(Cluster& cluster, NodeId id) {
  auto* r = dynamic_cast<WPaxosReplica*>(cluster.node(id));
  EXPECT_NE(r, nullptr);
  return r;
}

TEST(WPaxosTest, FirstToucherStealsAndCommits) {
  Cluster cluster(Config::LanGrid3x3("wpaxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(2);
  auto put = PutAndWait(cluster, client, 1, "stolen", NodeId{2, 1});
  ASSERT_TRUE(put.status.ok()) << put.status.ToString();
  EXPECT_GE(Replica(cluster, {2, 1})->objects_owned(), 1u);
  EXPECT_GE(Replica(cluster, {2, 1})->steals(), 1u);
}

TEST(WPaxosTest, RemoteRequestsForwardToOwner) {
  Cluster cluster(Config::LanGrid3x3("wpaxos"));
  Bootstrap(cluster);
  Client* c2 = cluster.NewClient(2);
  ASSERT_TRUE(PutAndWait(cluster, c2, 1, "v1", NodeId{2, 1}).status.ok());
  // A single request from zone 3 must not steal (threshold 3); it is
  // forwarded and still succeeds.
  Client* c3 = cluster.NewClient(3);
  auto get = GetAndWait(cluster, c3, 1, NodeId{3, 1});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");
  EXPECT_EQ(Replica(cluster, {3, 1})->objects_owned(), 0u);
}

TEST(WPaxosTest, ThreeConsecutiveRemoteAccessesMigrateObject) {
  Config cfg = Config::LanGrid3x3("wpaxos");
  cfg.params["handoff_cooldown_ms"] = "0";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* c1 = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, c1, 9, "origin", NodeId{1, 1}).status.ok());
  ASSERT_GE(Replica(cluster, {1, 1})->objects_owned(), 1u);

  // Sustained demand from zone 3: the owner hands the object off after
  // the third consecutive remote access.
  Client* c3 = cluster.NewClient(3);
  for (int i = 0; i < 6; ++i) {
    PutAndWait(cluster, c3, 9, "z3-" + std::to_string(i), NodeId{3, 1});
  }
  cluster.RunFor(kSecond);
  EXPECT_GE(Replica(cluster, {3, 1})->objects_owned(), 1u);
  // New owner serves reads locally with the latest value.
  auto get = GetAndWait(cluster, c3, 9, NodeId{3, 1});
  EXPECT_EQ(get.value, "z3-5");
}

TEST(WPaxosTest, CooldownSuppressesImmediateRecapture) {
  // Post-migration hysteresis: right after a steal, handoff triggers are
  // ignored, so a freshly moved object cannot ping-pong.
  Config cfg = Config::LanGrid3x3("wpaxos");
  cfg.params["handoff_cooldown_ms"] = "60000";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* c1 = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, c1, 9, "mine", NodeId{1, 1}).status.ok());
  Client* c3 = cluster.NewClient(3);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, c3, 9, "z3", NodeId{3, 1}).status.ok());
  }
  cluster.RunFor(kSecond);
  auto* owner = dynamic_cast<WPaxosReplica*>(cluster.node({1, 1}));
  auto* wanter = dynamic_cast<WPaxosReplica*>(cluster.node({3, 1}));
  EXPECT_GE(owner->objects_owned(), 1u);
  EXPECT_EQ(wanter->objects_owned(), 0u);
}

TEST(WPaxosTest, InterleavedAccessDoesNotThrash) {
  // Conflict-style interleaving from all zones: the 3-consecutive policy
  // must keep the object at its owner instead of ping-ponging.
  Cluster cluster(Config::LanGrid3x3("wpaxos"));
  Bootstrap(cluster);
  Client* c1 = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, c1, 4, "hot", NodeId{1, 1}).status.ok());
  const std::size_t steals_before =
      Replica(cluster, {1, 1})->steals() +
      Replica(cluster, {2, 1})->steals() + Replica(cluster, {3, 1})->steals();

  Client* c2 = cluster.NewClient(2);
  Client* c3 = cluster.NewClient(3);
  for (int i = 0; i < 10; ++i) {
    PutAndWait(cluster, c2, 4, "b" + std::to_string(i), NodeId{2, 1});
    PutAndWait(cluster, c3, 4, "c" + std::to_string(i), NodeId{3, 1});
    PutAndWait(cluster, c1, 4, "a" + std::to_string(i), NodeId{1, 1});
  }
  const std::size_t steals_after =
      Replica(cluster, {1, 1})->steals() +
      Replica(cluster, {2, 1})->steals() + Replica(cluster, {3, 1})->steals();
  EXPECT_EQ(steals_after, steals_before);
  EXPECT_GE(Replica(cluster, {1, 1})->objects_owned(), 1u);
}

TEST(WPaxosTest, InitialOwnerParameterPlacesAllObjects) {
  Config cfg = Config::Wan5("wpaxos");
  cfg.params["initial_owner"] = "2.1";  // everything starts in Ohio
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);  // Virginia client
  auto put = PutAndWait(cluster, client, 11, "oh-owned", NodeId{1, 1});
  ASSERT_TRUE(put.status.ok());
  EXPECT_GE(Replica(cluster, {2, 1})->objects_owned(), 1u);
  EXPECT_EQ(Replica(cluster, {1, 1})->objects_owned(), 0u);
}

TEST(WPaxosTest, Fz0CommitsWithOwnZoneOnly) {
  // With fz=0, cut every inter-zone link after the steal: commits must
  // still proceed inside the owner zone.
  Cluster cluster(Config::LanGrid3x3("wpaxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "pre", NodeId{1, 1}).status.ok());
  for (const NodeId& a : cluster.nodes()) {
    for (const NodeId& b : cluster.nodes()) {
      if (a.zone != b.zone) cluster.transport().Drop(a, b, 30 * kSecond);
    }
  }
  auto put = PutAndWait(cluster, client, 1, "zone-local", NodeId{1, 1});
  EXPECT_TRUE(put.status.ok()) << put.status.ToString();
}

TEST(WPaxosTest, Fz1RequiresASecondZone) {
  Config cfg = Config::LanGrid3x3("wpaxos");
  cfg.params["fz"] = "1";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "pre", NodeId{1, 1}).status.ok());
  // Isolate zone 1 entirely: with fz=1 its leader cannot commit alone.
  for (const NodeId& a : cluster.nodes()) {
    for (const NodeId& b : cluster.nodes()) {
      if ((a.zone == 1) != (b.zone == 1)) {
        cluster.transport().Drop(a, b, 30 * kSecond);
      }
    }
  }
  Command cmd;
  cmd.op = Command::Op::kPut;
  cmd.key = 1;
  cmd.value = "must-stall";
  bool done = false;
  client->Issue(cmd, NodeId{1, 1},
                [&](const Client::Reply& r) { done = r.status.ok(); });
  cluster.RunFor(kSecond);
  EXPECT_FALSE(done);
}

TEST(WPaxosTest, LinearizableUnderMultiZoneLoad) {
  Config cfg = Config::LanGrid3x3("wpaxos");
  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/40, /*write_ratio=*/0.5);
  options.clients_per_zone = 3;
  options.duration_s = 1.0;
  options.warmup_s = 0.5;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  ASSERT_GT(result.completed, 200u);
  EXPECT_EQ(result.errors, 0u);
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

class WPaxosFzSweep : public ::testing::TestWithParam<int> {};

TEST_P(WPaxosFzSweep, CommitsAtEveryFaultLevel) {
  Config cfg = Config::Wan5("wpaxos");
  cfg.params["fz"] = std::to_string(GetParam());
  Cluster cluster(cfg);
  Bootstrap(cluster, 2 * kSecond);
  Client* client = cluster.NewClient(3);
  auto put = PutAndWait(cluster, client, 5, "fz-sweep", NodeId{3, 1});
  EXPECT_TRUE(put.status.ok()) << "fz=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FzLevels, WPaxosFzSweep,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace paxi
