#include <memory>

#include "gtest/gtest.h"
#include "quorum/quorum.h"

namespace paxi {
namespace {

std::vector<NodeId> Grid(int zones, int per_zone) {
  std::vector<NodeId> out;
  for (int z = 1; z <= zones; ++z) {
    for (int n = 1; n <= per_zone; ++n) out.push_back(NodeId{z, n});
  }
  return out;
}

// --- CountQuorum ---------------------------------------------------------------

TEST(CountQuorumTest, MajoritySatisfaction) {
  auto q = CountQuorum::Majority(Grid(1, 5));
  EXPECT_EQ(q->needed(), 3u);
  q->Ack({1, 1});
  q->Ack({1, 2});
  EXPECT_FALSE(q->Satisfied());
  q->Ack({1, 3});
  EXPECT_TRUE(q->Satisfied());
}

TEST(CountQuorumTest, DuplicateAcksIdempotent) {
  auto q = CountQuorum::Majority(Grid(1, 3));
  q->Ack({1, 1});
  q->Ack({1, 1});
  q->Ack({1, 1});
  EXPECT_FALSE(q->Satisfied());
  EXPECT_EQ(q->num_acks(), 1u);
}

TEST(CountQuorumTest, NonMembersDoNotCount) {
  CountQuorum q(Grid(1, 3), 2);
  q.Ack({9, 9});
  q.Ack({8, 8});
  EXPECT_FALSE(q.Satisfied());
  q.Ack({1, 1});
  q.Ack({1, 2});
  EXPECT_TRUE(q.Satisfied());
}

TEST(CountQuorumTest, RejectedWhenImpossible) {
  CountQuorum q(Grid(1, 5), 3);
  q.Nack({1, 1});
  q.Nack({1, 2});
  EXPECT_FALSE(q.Rejected());
  q.Nack({1, 3});
  EXPECT_TRUE(q.Rejected());
}

TEST(CountQuorumTest, NackThenAckRecovers) {
  CountQuorum q(Grid(1, 3), 2);
  q.Nack({1, 1});
  q.Ack({1, 1});
  q.Ack({1, 2});
  EXPECT_TRUE(q.Satisfied());
}

TEST(CountQuorumTest, ResetClears) {
  CountQuorum q(Grid(1, 3), 2);
  q.Ack({1, 1});
  q.Ack({1, 2});
  ASSERT_TRUE(q.Satisfied());
  q.Reset();
  EXPECT_FALSE(q.Satisfied());
  EXPECT_EQ(q.num_acks(), 0u);
}

// Property sweep: any two majority quorums over the same membership
// intersect — the foundation of Paxos safety.
class MajorityIntersection : public ::testing::TestWithParam<int> {};

TEST_P(MajorityIntersection, AnyTwoMajoritiesIntersect) {
  const int n = GetParam();
  const auto members = Grid(1, n);
  const std::size_t needed = static_cast<std::size_t>(n) / 2 + 1;
  // 2 * needed > n guarantees pigeonhole intersection.
  EXPECT_GT(2 * needed, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MajorityIntersection,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 9, 11, 15, 99));

// --- ZoneMajorityQuorum ----------------------------------------------------------

TEST(ZoneMajorityTest, SingleZoneMajority) {
  ZoneMajorityQuorum q(GroupByZone(Grid(3, 3)), 1);
  q.Ack({2, 1});
  EXPECT_FALSE(q.Satisfied());
  q.Ack({2, 2});
  EXPECT_TRUE(q.Satisfied());  // zone 2 has 2/3
  EXPECT_EQ(q.SatisfiedZones(), 1);
}

TEST(ZoneMajorityTest, NeedsDistinctZones) {
  ZoneMajorityQuorum q(GroupByZone(Grid(3, 3)), 2);
  q.Ack({1, 1});
  q.Ack({1, 2});
  q.Ack({1, 3});
  EXPECT_FALSE(q.Satisfied());  // one full zone is still one zone
  q.Ack({3, 1});
  q.Ack({3, 2});
  EXPECT_TRUE(q.Satisfied());
}

TEST(ZoneMajorityTest, RejectedWhenTooManyZonesImpossible) {
  ZoneMajorityQuorum q(GroupByZone(Grid(3, 3)), 2);
  // Nack majority of zones 1 and 2 -> only zone 3 can satisfy -> needs 2.
  q.Nack({1, 1});
  q.Nack({1, 2});
  q.Nack({2, 1});
  q.Nack({2, 2});
  EXPECT_TRUE(q.Rejected());
}

// Property sweep over (zones, per_zone, fz): WPaxos q1 (Z - fz zones) and
// q2 (fz + 1 zones) always intersect in at least one node.
struct GridParams {
  int zones;
  int per_zone;
  int fz;
};

class FlexibleGridIntersection
    : public ::testing::TestWithParam<GridParams> {};

TEST_P(FlexibleGridIntersection, Q1IntersectsQ2) {
  const auto [zones, per_zone, fz] = GetParam();
  // Adversarial choice: q1 takes the FIRST (Z - fz) zones with the LOWEST
  // node indices; q2 takes the LAST (fz + 1) zones with the HIGHEST node
  // indices. Zone overlap is guaranteed by counting; node overlap inside
  // the shared zone by majority pigeonhole.
  const int q1_zones = zones - fz;
  const int q2_zones = fz + 1;
  ASSERT_GT(q1_zones + q2_zones, zones);  // zones overlap
  const int zone_majority = per_zone / 2 + 1;
  ASSERT_GT(2 * zone_majority, per_zone);  // node sets overlap within zone
}

INSTANTIATE_TEST_SUITE_P(
    Grids, FlexibleGridIntersection,
    ::testing::Values(GridParams{3, 3, 0}, GridParams{3, 3, 1},
                      GridParams{3, 3, 2}, GridParams{5, 3, 0},
                      GridParams{5, 3, 1}, GridParams{5, 3, 2},
                      GridParams{5, 5, 4}, GridParams{2, 7, 1}));

// Behavioral version of the same property on the actual tally objects.
TEST(ZoneMajorityTest, Q1AndQ2TalliesShareANode) {
  const int zones = 5, per_zone = 3, fz = 1;
  const auto members = Grid(zones, per_zone);
  ZoneMajorityQuorum q1(GroupByZone(members), zones - fz);
  ZoneMajorityQuorum q2(GroupByZone(members), fz + 1);

  // Satisfy q1 with zones 1..4 (majority each: nodes 1,2).
  for (int z = 1; z <= 4; ++z) {
    q1.Ack({z, 1});
    q1.Ack({z, 2});
  }
  ASSERT_TRUE(q1.Satisfied());
  // Satisfy q2 with zones 4,5 using nodes 2,3 (overlaps q1 at 4.2).
  for (int z = 4; z <= 5; ++z) {
    q2.Ack({z, 2});
    q2.Ack({z, 3});
  }
  ASSERT_TRUE(q2.Satisfied());
  // Intersection: node {4,2} is in both ack sets.
  EXPECT_TRUE(q1.acks().count({4, 2}) == 1 && q2.acks().count({4, 2}) == 1);
}

// --- GroupQuorum -----------------------------------------------------------------

TEST(GroupQuorumTest, AnyCompleteGroupSatisfies) {
  GroupQuorum q({{{1, 1}, {1, 2}}, {{2, 1}, {2, 2}}});
  q.Ack({1, 1});
  q.Ack({2, 2});
  EXPECT_FALSE(q.Satisfied());
  q.Ack({2, 1});
  EXPECT_TRUE(q.Satisfied());  // group {2.1, 2.2} complete
}

TEST(GroupQuorumTest, RejectedWhenEveryGroupBroken) {
  GroupQuorum q({{{1, 1}, {1, 2}}, {{2, 1}}});
  q.Nack({1, 2});
  EXPECT_FALSE(q.Rejected());
  q.Nack({2, 1});
  EXPECT_TRUE(q.Rejected());
}

// --- Helpers --------------------------------------------------------------------

TEST(QuorumHelpersTest, NodesInZoneAndGroupByZone) {
  const auto members = Grid(3, 2);
  EXPECT_EQ(NodesInZone(members, 2),
            (std::vector<NodeId>{{2, 1}, {2, 2}}));
  const auto grouped = GroupByZone(members);
  EXPECT_EQ(grouped.size(), 3u);
  EXPECT_EQ(grouped.at(3).size(), 2u);
}

}  // namespace
}  // namespace paxi
