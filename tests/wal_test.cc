// Durable-storage unit tests (src/store/wal): the record codec's
// roundtrip and corruption detection, NodeDisk crash semantics (clean /
// torn-tail / synced-tail), checksum-driven prefix truncation on
// recovery, group-commit coalescing in WalWriter, and WAL compaction's
// preservation of the unsynced tail — plus the contended-disk queueing
// model (DiskModel::QueueingWaitUs) validated against a simulated
// two-writers-one-device queue.

#include <cmath>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "model/protocol_model.h"
#include "store/wal.h"

namespace paxi {
namespace {

Command MakePut(Key key, const std::string& value, ClientId client = 7,
                RequestId request = 1) {
  Command cmd;
  cmd.op = Command::Op::kPut;
  cmd.key = key;
  cmd.value = value;
  cmd.client = client;
  cmd.request = request;
  return cmd;
}

WalRecord AcceptRecord(Slot slot, std::int64_t domain = kWalMainDomain) {
  WalRecord rec;
  rec.type = WalRecord::Type::kAccept;
  rec.domain = domain;
  rec.slot = slot;
  rec.ballot = Ballot{3, NodeId{1, 2}};
  rec.cmds = {MakePut(slot, "v" + std::to_string(slot))};
  return rec;
}

// ---------------------------------------------------------------------------
// Codec: every field of every record type survives a roundtrip; torn or
// corrupted frames are rejected without advancing the cursor.
// ---------------------------------------------------------------------------

TEST(WalCodecTest, RoundTripsEveryRecordType) {
  std::vector<WalRecord> records;

  WalRecord accept;
  accept.type = WalRecord::Type::kAccept;
  accept.domain = 42;
  accept.slot = 17;
  accept.ballot = Ballot{5, NodeId{2, 3}};
  accept.committed = true;
  accept.noop = false;
  accept.extra = {1, 0xDEADBEEFULL, 3};
  accept.cmds = {MakePut(9, "hello"), MakePut(10, std::string(500, 'x'), 8, 2)};
  records.push_back(accept);

  WalRecord commit;
  commit.type = WalRecord::Type::kCommit;
  commit.slot = 99;
  records.push_back(commit);

  WalRecord mark;
  mark.type = WalRecord::Type::kSnapshotMark;
  mark.slot = 64;
  mark.extra = {0xFEEDFACEULL};
  mark.modeled_payload = 4096;
  records.push_back(mark);

  WalRecord ballot;
  ballot.type = WalRecord::Type::kBallot;
  ballot.domain = kWalMainDomain + 1;
  ballot.ballot = Ballot{12, NodeId{3, 1}};
  ballot.noop = true;
  records.push_back(ballot);

  std::string bytes;
  for (const WalRecord& rec : records) bytes += EncodeWalRecord(rec);

  std::size_t offset = 0;
  for (const WalRecord& want : records) {
    WalRecord got;
    ASSERT_TRUE(DecodeWalRecord(bytes, &offset, &got));
    EXPECT_EQ(got, want);
    EXPECT_EQ(got.ContentDigest(), want.ContentDigest());
  }
  EXPECT_EQ(offset, bytes.size());
}

TEST(WalCodecTest, TornFrameRejectedWithoutAdvancing) {
  const std::string whole = EncodeWalRecord(AcceptRecord(3));
  // Every strict prefix is torn: either the length header or the payload
  // is cut short.
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    const std::string torn = whole.substr(0, cut);
    std::size_t offset = 0;
    WalRecord out;
    EXPECT_FALSE(DecodeWalRecord(torn, &offset, &out)) << "cut=" << cut;
    EXPECT_EQ(offset, 0u) << "cut=" << cut;
  }
}

TEST(WalCodecTest, BitFlipFailsChecksum) {
  const WalRecord rec = AcceptRecord(5);
  const std::string clean = EncodeWalRecord(rec);
  // Flip one bit anywhere in the payload region: the checksum must catch
  // it (header corruption may instead present as a torn frame — also a
  // decode failure, tested above).
  for (std::size_t pos = kWalFrameBytes; pos < clean.size(); ++pos) {
    std::string bad = clean;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    std::size_t offset = 0;
    WalRecord out;
    EXPECT_FALSE(DecodeWalRecord(bad, &offset, &out)) << "pos=" << pos;
  }
}

TEST(WalCodecTest, ModeledBytesChargePerCommand) {
  WalRecord rec = AcceptRecord(1);
  rec.cmds = {MakePut(1, "a"), MakePut(2, "b"), MakePut(3, "c")};
  EXPECT_EQ(rec.ModeledBytes(),
            kWalRecordModelBytes + 3 * kWalCommandModelBytes);
  // Payload strings must NOT change the modeled cost (the model charges
  // canonical sizes, like the NIC's 100-byte message).
  rec.cmds[0].value = std::string(10000, 'z');
  EXPECT_EQ(rec.ModeledBytes(),
            kWalRecordModelBytes + 3 * kWalCommandModelBytes);

  WalRecord mark;
  mark.type = WalRecord::Type::kSnapshotMark;
  mark.modeled_payload = 777;
  EXPECT_EQ(mark.ModeledBytes(), kWalRecordModelBytes + 777);
}

// ---------------------------------------------------------------------------
// NodeDisk: crash modes, recovery truncation, corruption detection.
// ---------------------------------------------------------------------------

class NodeDiskTest : public ::testing::Test {
 protected:
  NodeDiskTest() : disk_(DiskParams{}) {}

  /// Appends accept records for slots [first, last] and optionally syncs
  /// them all in one marked group commit.
  void AppendSlots(Slot first, Slot last, bool sync) {
    std::size_t bytes = 0;
    for (Slot s = first; s <= last; ++s) {
      const WalRecord rec = AcceptRecord(s);
      disk_.Append(rec);
      bytes += rec.ModeledBytes();
    }
    if (sync) {
      disk_.MarkDurable(static_cast<std::size_t>(last - first + 1), bytes);
    }
  }

  NodeDisk disk_;
};

TEST_F(NodeDiskTest, CleanCrashDropsUnsyncedTail) {
  AppendSlots(0, 2, /*sync=*/true);
  AppendSlots(3, 4, /*sync=*/false);
  ASSERT_EQ(disk_.unsynced_records(), 2u);
  ASSERT_GT(disk_.log_bytes(), disk_.durable_bytes());

  disk_.Crash();  // kClean: the tail vanishes at the durable frontier.
  EXPECT_EQ(disk_.log_bytes(), disk_.durable_bytes());
  EXPECT_EQ(disk_.unsynced_records(), 0u);

  const NodeDisk::Recovered rec = disk_.Decode();
  EXPECT_FALSE(rec.truncated);
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records.back().slot, 2);
  EXPECT_EQ(rec.valid_bytes, disk_.log_bytes());
}

TEST_F(NodeDiskTest, TornTailCrashLeavesPartialFrameThatRecoveryCuts) {
  AppendSlots(0, 2, /*sync=*/true);
  const std::size_t frontier = disk_.durable_bytes();
  // Unequal tail records: the torn cut (half the tail) is guaranteed to
  // land strictly inside the big final record's frame.
  disk_.Append(AcceptRecord(3));
  WalRecord big = AcceptRecord(4);
  big.cmds[0].value = std::string(1000, 'q');
  disk_.Append(big);
  disk_.set_crash_mode(NodeDisk::CrashMode::kTornTail);
  disk_.Crash();
  EXPECT_EQ(disk_.crash_mode(), NodeDisk::CrashMode::kClean) << "mode resets";

  // A strict prefix of the unsynced tail survived past the old frontier,
  // ending mid-record.
  EXPECT_GT(disk_.log_bytes(), frontier);

  const NodeDisk::Recovered rec = disk_.Decode();
  EXPECT_TRUE(rec.truncated);
  // The synced prefix plus the whole record 3 decode; record 4 is torn.
  ASSERT_EQ(rec.records.size(), 4u);
  EXPECT_EQ(rec.records[3].slot, 3);
  EXPECT_LT(rec.valid_bytes, disk_.log_bytes());

  // Recovery's contract: truncate to the valid prefix, then append anew.
  disk_.TruncateTo(rec.valid_bytes);
  EXPECT_EQ(disk_.log_bytes(), rec.valid_bytes);
  EXPECT_EQ(disk_.durable_bytes(), rec.valid_bytes);
  EXPECT_FALSE(disk_.Decode().truncated);
}

TEST_F(NodeDiskTest, SyncedTailCrashKeepsWholeTail) {
  AppendSlots(0, 2, /*sync=*/true);
  AppendSlots(3, 4, /*sync=*/false);
  disk_.set_crash_mode(NodeDisk::CrashMode::kSyncedTail);
  disk_.Crash();

  // The device finished the in-flight write: everything decodes.
  const NodeDisk::Recovered rec = disk_.Decode();
  EXPECT_FALSE(rec.truncated);
  ASSERT_EQ(rec.records.size(), 5u);
  EXPECT_EQ(rec.records.back().slot, 4);
}

TEST_F(NodeDiskTest, CorruptByteTruncatesPrefixAtBadChecksum) {
  AppendSlots(0, 4, /*sync=*/true);
  const std::size_t whole = disk_.log_bytes();

  // Flip a bit in the middle of the log: everything from the corrupted
  // record on is unrecoverable, the prefix before it survives.
  disk_.CorruptByte(whole / 2);
  const NodeDisk::Recovered rec = disk_.Decode();
  EXPECT_TRUE(rec.truncated);
  EXPECT_LT(rec.records.size(), 5u);
  EXPECT_LT(rec.valid_bytes, whole);
  for (std::size_t i = 0; i < rec.records.size(); ++i) {
    EXPECT_EQ(rec.records[i].slot, static_cast<Slot>(i));
  }
}

TEST_F(NodeDiskTest, SyncDurationModelsLatencyPlusBandwidth) {
  // 400us fixed + 250 MB/s: 250_000 bytes cost exactly 1000us of
  // transfer.
  EXPECT_EQ(disk_.SyncDuration(0), 400);
  EXPECT_EQ(disk_.SyncDuration(250'000), 1400);
  disk_.set_slow_factor(3.0);
  EXPECT_EQ(disk_.SyncDuration(250'000), 3 * 1400);
  disk_.set_slow_factor(1.0);
  EXPECT_EQ(disk_.SyncDuration(250'000), 1400);
}

TEST_F(NodeDiskTest, WipeClearsMediumButKeepsLifetimeStats) {
  AppendSlots(0, 2, /*sync=*/true);
  StoreSnapshot snap;
  snap.applied = 2;
  disk_.SaveSnapshot(kWalMainDomain, snap);
  ASSERT_NE(disk_.FindSnapshot(kWalMainDomain, 2), nullptr);
  const std::uint64_t synced = disk_.stats().bytes_synced;
  ASSERT_GT(synced, 0u);

  disk_.Wipe();
  EXPECT_EQ(disk_.log_bytes(), 0u);
  EXPECT_EQ(disk_.durable_bytes(), 0u);
  EXPECT_EQ(disk_.FindSnapshot(kWalMainDomain, 2), nullptr);
  EXPECT_EQ(disk_.stats().bytes_synced, synced);
}

// ---------------------------------------------------------------------------
// Compaction: obsolete records of the snapshotted domain are dropped, the
// unsynced tail and other domains survive byte-for-byte.
// ---------------------------------------------------------------------------

TEST_F(NodeDiskTest, CompactDomainDropsObsoleteAndPreservesUnsyncedTail) {
  AppendSlots(0, 5, /*sync=*/true);
  WalRecord other = AcceptRecord(1, /*domain=*/77);
  disk_.Append(other);
  disk_.MarkDurable(1, other.ModeledBytes());
  AppendSlots(6, 7, /*sync=*/false);  // unsynced tail

  StoreSnapshot snap;
  snap.applied = 3;
  disk_.SaveSnapshot(kWalMainDomain, snap);
  StoreSnapshot old_snap;
  old_snap.applied = 1;
  disk_.SaveSnapshot(kWalMainDomain, old_snap);

  const std::size_t before = disk_.log_bytes();
  disk_.CompactDomain(kWalMainDomain, 3);
  EXPECT_LT(disk_.log_bytes(), before);
  EXPECT_GT(disk_.stats().bytes_compacted, 0u);
  EXPECT_EQ(disk_.unsynced_records(), 2u);

  const NodeDisk::Recovered rec = disk_.Decode();
  EXPECT_FALSE(rec.truncated);
  std::vector<Slot> main_slots;
  bool saw_other = false;
  for (const WalRecord& r : rec.records) {
    if (r.domain == kWalMainDomain) {
      main_slots.push_back(r.slot);
    } else if (r.domain == 77) {
      saw_other = true;
    }
  }
  EXPECT_EQ(main_slots, (std::vector<Slot>{4, 5, 6, 7}));
  EXPECT_TRUE(saw_other) << "foreign domain must survive compaction";

  // Snapshot pruning: the obsolete snapshot is gone, the live one stays.
  EXPECT_EQ(disk_.FindSnapshot(kWalMainDomain, 1), nullptr);
  EXPECT_NE(disk_.FindSnapshot(kWalMainDomain, 3), nullptr);

  // The in-flight sync completes correctly across the rewrite: the two
  // tail records become durable, no more.
  disk_.MarkDurable(2, 2 * AcceptRecord(6).ModeledBytes());
  EXPECT_EQ(disk_.durable_bytes(), disk_.log_bytes());
  EXPECT_EQ(disk_.unsynced_records(), 0u);
}

TEST_F(NodeDiskTest, CompactDomainLeavesCorruptRegionToRecovery) {
  AppendSlots(0, 4, /*sync=*/true);
  disk_.CorruptByte(disk_.log_bytes() / 2);
  const std::size_t before = disk_.log_bytes();
  disk_.CompactDomain(kWalMainDomain, 3);
  EXPECT_EQ(disk_.log_bytes(), before)
      << "a non-decoding durable region must not be rewritten";
}

// ---------------------------------------------------------------------------
// WalWriter: group-commit coalescing on a fake scheduler clock.
// ---------------------------------------------------------------------------

/// Single-threaded fake of the Node scheduler: callbacks queue and run
/// only when the test pumps them, so the test controls sync completion.
class FakeScheduler {
 public:
  WalWriter::Scheduler AsScheduler() {
    return [this](Time delay, std::function<void()> fn) {
      queue_.emplace_back(delay, std::move(fn));
    };
  }

  std::size_t pending() const { return queue_.size(); }
  Time last_delay() const { return queue_.back().first; }

  /// Runs the oldest scheduled callback.
  void RunOne() {
    ASSERT_FALSE(queue_.empty());
    auto [delay, fn] = std::move(queue_.front());
    queue_.erase(queue_.begin());
    fn();
  }

 private:
  std::vector<std::pair<Time, std::function<void()>>> queue_;
};

TEST(WalWriterTest, CoalescesAppendsIntoGroupCommits) {
  DiskParams params;
  params.group_commit_max = 8;
  NodeDisk disk(params);
  FakeScheduler sched;
  WalWriter writer(&disk, sched.AsScheduler());

  std::vector<int> done;
  // First append starts a sync immediately; the next 11 queue behind it.
  for (int i = 0; i < 12; ++i) {
    writer.Append(AcceptRecord(i), [&done, i]() { done.push_back(i); });
  }
  EXPECT_TRUE(writer.sync_in_flight());
  ASSERT_EQ(sched.pending(), 1u);

  // Sync 1 covers only the record that was pending when it started.
  sched.RunOne();
  EXPECT_EQ(done, (std::vector<int>{0}));

  // Sync 2 coalesces the backlog, capped at group_commit_max = 8.
  ASSERT_EQ(sched.pending(), 1u);
  sched.RunOne();
  ASSERT_EQ(done.size(), 9u);
  EXPECT_EQ(done.back(), 8) << "callbacks fire in append order";

  // Sync 3 drains the rest; nothing further is scheduled.
  sched.RunOne();
  EXPECT_EQ(done.size(), 12u);
  EXPECT_FALSE(writer.sync_in_flight());
  EXPECT_EQ(sched.pending(), 0u);

  EXPECT_EQ(disk.stats().sync_count, 3u);
  EXPECT_EQ(disk.stats().records_synced, 12u);
  EXPECT_DOUBLE_EQ(disk.stats().MeanGroupCommit(), 4.0);
  EXPECT_EQ(disk.durable_bytes(), disk.log_bytes());
}

TEST(WalWriterTest, SyncDelayScalesWithGroupBytes) {
  DiskParams params;
  params.sync_latency_us = 400;
  params.disk_mbps = 250.0;
  params.group_commit_max = 8;
  NodeDisk disk(params);
  FakeScheduler sched;
  WalWriter writer(&disk, sched.AsScheduler());

  writer.Append(AcceptRecord(0), nullptr);
  ASSERT_EQ(sched.pending(), 1u);
  const Time single = sched.last_delay();
  EXPECT_EQ(single, disk.SyncDuration(AcceptRecord(0).ModeledBytes()));

  // Queue 4 more; when the first sync completes, the follow-up sync's
  // delay charges all 4 records' bytes.
  for (int i = 1; i <= 4; ++i) writer.Append(AcceptRecord(i), nullptr);
  sched.RunOne();
  ASSERT_EQ(sched.pending(), 1u);
  EXPECT_EQ(sched.last_delay(),
            disk.SyncDuration(4 * AcceptRecord(1).ModeledBytes()));
  sched.RunOne();
  EXPECT_EQ(disk.stats().sync_count, 2u);
}

TEST(WalWriterTest, CrashMidSyncLosesExactlyTheInFlightGroup) {
  DiskParams params;
  params.group_commit_max = 8;
  NodeDisk disk(params);
  std::vector<int> done;
  {
    FakeScheduler sched;
    WalWriter writer(&disk, sched.AsScheduler());
    for (int i = 0; i < 3; ++i) {
      writer.Append(AcceptRecord(i), [&done, i]() { done.push_back(i); });
    }
    sched.RunOne();  // sync 1 (record 0) completes
    ASSERT_EQ(done, (std::vector<int>{0}));
    // Sync 2 (records 1-2) is in flight; the node dies here — the writer
    // is destroyed and the scheduled completion never runs.
  }
  disk.Crash();  // kClean: unsynced records 1-2 are gone.
  const NodeDisk::Recovered rec = disk.Decode();
  ASSERT_EQ(rec.records.size(), 1u);
  EXPECT_EQ(rec.records[0].slot, 0);
  EXPECT_EQ(done, (std::vector<int>{0})) << "no callback after death";
}

// ---------------------------------------------------------------------------
// Contended-disk queueing: DiskModel::QueueingWaitUs vs a simulated
// shared device.
// ---------------------------------------------------------------------------

// The analytic disk and the simulated disk must agree on what one
// uncontended single-record sync costs — QueueingWaitUs scales off that
// service time, so the identity anchors the whole queueing term.
TEST(DiskQueueingModelTest, ServiceTimeMatchesSimulatedDisk) {
  const model::DiskModel dm;  // defaults mirror DiskParams
  NodeDisk disk(DiskParams{});
  const WalRecord rec = AcceptRecord(1);
  EXPECT_DOUBLE_EQ(dm.RecordBytes(1.0),
                   static_cast<double>(rec.ModeledBytes()));
  EXPECT_NEAR(dm.UncontendedSyncUs(1.0),
              static_cast<double>(disk.SyncDuration(rec.ModeledBytes())),
              1.0);  // SyncDuration truncates to integer microseconds
}

// Two replicas' WALs sharing one physical device: each writer's syncs
// arrive as a Poisson stream and the device serves them one at a time
// (exponential service with mean = one uncontended sync — the M/M/1
// assumptions QueueingWaitUs encodes). NodeDisk itself gives every
// writer a dedicated device, so the contended medium is simulated here:
// a busy-until clock over the merged arrival stream. The measured mean
// wait-before-service must track rho/(1-rho) * S.
TEST(DiskQueueingModelTest, TwoWritersOneDiskMatchesQueueingWait) {
  const model::DiskModel dm;
  const double service_us = dm.UncontendedSyncUs(1.0);

  // Mean queueing wait from a two-writer merged Poisson stream at
  // utilization rho, over `arrivals` syncs.
  auto simulate = [&](double rho, std::uint64_t seed) {
    const int arrivals = 20000;
    // Each of the two writers submits at rho / (2 * S): the merged
    // stream is Poisson at rate rho / S, which is what the model's
    // `sync_rate_per_us` aggregates.
    const double per_writer_rate = rho / service_us / 2.0;
    Rng rng(seed);
    double next_a = rng.Exponential(per_writer_rate);
    double next_b = rng.Exponential(per_writer_rate);
    double busy_until = 0.0;
    double total_wait = 0.0;
    for (int i = 0; i < arrivals; ++i) {
      // The device takes whichever writer's submission comes first and
      // holds it for one (exponential) sync; the served writer re-arms
      // its own stream. The superposition of the two streams is Poisson
      // at the aggregate rate — exactly the model's contention picture.
      const bool a_first = next_a <= next_b;
      const double at = a_first ? next_a : next_b;
      const double start = at > busy_until ? at : busy_until;
      total_wait += start - at;
      busy_until = start + rng.Exponential(1.0 / service_us);
      if (a_first) {
        next_a = at + rng.Exponential(per_writer_rate);
      } else {
        next_b = at + rng.Exponential(per_writer_rate);
      }
    }
    return total_wait / arrivals;
  };

  for (const double rho : {0.3, 0.6}) {
    const double measured = simulate(rho, /*seed=*/0xD15C + 7);
    const double modeled = dm.QueueingWaitUs(rho / service_us, 1.0);
    EXPECT_NEAR(measured, modeled, 0.25 * modeled)
        << "rho=" << rho << ": measured " << measured << "us vs modeled "
        << modeled << "us";
  }

  // Contention is superlinear in utilization: doubling rho from 0.3 to
  // 0.6 more than triples the modeled wait (rho/(1-rho) curvature), and
  // the simulated queue shows the same blow-up.
  EXPECT_GT(dm.QueueingWaitUs(0.6 / service_us, 1.0),
            3.0 * dm.QueueingWaitUs(0.3 / service_us, 1.0));
  EXPECT_GT(simulate(0.6, 11), 2.5 * simulate(0.3, 11));

  // At and past saturation the queue never drains: the model pins the
  // wait at infinity instead of returning a misleading finite number.
  EXPECT_TRUE(std::isinf(dm.QueueingWaitUs(1.01 / service_us, 1.0)));
  EXPECT_TRUE(std::isinf(dm.QueueingWaitUs(1.7 / service_us, 1.0)));
  EXPECT_EQ(dm.QueueingWaitUs(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace paxi
