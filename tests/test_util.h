#ifndef PAXI_TESTS_TEST_UTIL_H_
#define PAXI_TESTS_TEST_UTIL_H_

#include <string>

#include "core/client.h"
#include "core/cluster.h"
#include "store/command.h"

namespace paxi {

/// Issues one command and runs the simulator until the reply (or a 30s
/// virtual-time horizon, far beyond any client retry schedule).
inline Client::Reply IssueAndWait(Cluster& cluster, Client* client,
                                  Command cmd, NodeId target) {
  Client::Reply out;
  bool done = false;
  client->Issue(std::move(cmd), target, [&](const Client::Reply& reply) {
    out = reply;
    done = true;
  });
  const Time horizon = cluster.sim().Now() + 30 * kSecond;
  while (!done && cluster.sim().Now() < horizon) {
    if (!cluster.sim().Step()) break;
  }
  return out;
}

inline Client::Reply PutAndWait(Cluster& cluster, Client* client, Key key,
                                const Value& value, NodeId target) {
  Command cmd;
  cmd.op = Command::Op::kPut;
  cmd.key = key;
  cmd.value = value;
  return IssueAndWait(cluster, client, std::move(cmd), target);
}

inline Client::Reply GetAndWait(Cluster& cluster, Client* client, Key key,
                                NodeId target) {
  Command cmd;
  cmd.op = Command::Op::kGet;
  cmd.key = key;
  return IssueAndWait(cluster, client, std::move(cmd), target);
}

/// Starts the cluster and runs `bootstrap` of virtual time so leaders are
/// elected / ownership settles before tests issue traffic.
inline void Bootstrap(Cluster& cluster, Time bootstrap = kSecond) {
  cluster.Start();
  cluster.RunFor(bootstrap);
}

}  // namespace paxi

#endif  // PAXI_TESTS_TEST_UTIL_H_
