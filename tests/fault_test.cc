// Nemesis fault-injection subsystem tests (src/fault): schedule
// determinism, byte-identical replay of seeded nemesis runs, crash-restart
// recovery with bounded time-to-recovery across every protocol, safety
// (linearizability + invariant audits) under the built-in nemeses, and the
// availability-timeline telemetry — the §4.2 availability methodology of
// the paper as an executable test suite.

#include <cstdlib>
#include <string>
#include <vector>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "fault/nemesis.h"
#include "fault/schedule.h"
#include "fault/telemetry.h"
#include "gtest/gtest.h"
#include "sim/auditor.h"
#include "test_util.h"

namespace paxi {
namespace {

/// Enables the runtime invariant auditor (PAXI_AUDIT=1) for the lifetime
/// of one test: every Cluster built inside the scope self-checks ballot
/// monotonicity and per-slot agreement after every event (fail-fast).
class ScopedAudit {
 public:
  ScopedAudit() { setenv("PAXI_AUDIT", "1", 1); }
  ~ScopedAudit() { unsetenv("PAXI_AUDIT"); }
};

// ---------------------------------------------------------------------------
// Availability telemetry unit behavior.
// ---------------------------------------------------------------------------

TEST(AvailabilityTrackerTest, BucketsWindowsAndRecovery) {
  AvailabilityTracker tracker(100 * kMillisecond);
  tracker.RecordOp(50 * kMillisecond, 5 * kMillisecond, true);   // bucket 0
  tracker.RecordOp(120 * kMillisecond, 15 * kMillisecond, true); // bucket 1
  tracker.RecordFault(250 * kMillisecond, "drop 1.1>1.2 100ms");
  tracker.RecordOp(310 * kMillisecond, 5 * kMillisecond, false); // error only
  tracker.RecordOp(450 * kMillisecond, 5 * kMillisecond, true);  // bucket 4
  tracker.Finalize(500 * kMillisecond);

  ASSERT_EQ(tracker.timeline().size(), 5u);
  EXPECT_EQ(tracker.timeline()[0].completed, 1u);
  EXPECT_DOUBLE_EQ(tracker.timeline()[1].mean_latency_ms, 15.0);
  EXPECT_EQ(tracker.timeline()[3].errors, 1u);

  // Buckets 2 and 3 completed nothing: one unavailability window.
  ASSERT_EQ(tracker.unavailability_windows().size(), 1u);
  EXPECT_EQ(tracker.unavailability_windows()[0].start, 200 * kMillisecond);
  EXPECT_EQ(tracker.unavailability_windows()[0].end, 400 * kMillisecond);

  // Recovery: first completing interval after the fault starts at 400ms.
  ASSERT_EQ(tracker.faults().size(), 1u);
  EXPECT_EQ(tracker.faults()[0].recovered_at, 400 * kMillisecond);
  EXPECT_EQ(tracker.MaxTimeToRecovery(), 150 * kMillisecond);

  const std::string json = tracker.ToJson();
  EXPECT_NE(json.find("\"timeline\":["), std::string::npos);
  EXPECT_NE(json.find("\"unavailability_windows\":[{\"start_us\":200000"),
            std::string::npos);
  EXPECT_NE(json.find("\"max_ttr_us\":150000"), std::string::npos);
  EXPECT_NE(json.find("drop 1.1>1.2 100ms"), std::string::npos);
}

TEST(AvailabilityTrackerTest, UnrecoveredFaultReportsMinusOne) {
  AvailabilityTracker tracker(100 * kMillisecond);
  tracker.RecordOp(50 * kMillisecond, kMillisecond, true);
  tracker.RecordFault(150 * kMillisecond, "crash 1.1 1000ms");
  tracker.Finalize(400 * kMillisecond);
  EXPECT_EQ(tracker.faults()[0].recovered_at, -1);
  EXPECT_EQ(tracker.MaxTimeToRecovery(), -1);
}

// ---------------------------------------------------------------------------
// Schedules: pure functions of (nemesis, nodes, seed).
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, BuiltinSchedulesAreDeterministic) {
  const std::vector<NodeId> nodes = Config::Lan9("paxos").Nodes();
  const NodeId leader{1, 1};
  NemesisOptions opts;
  opts.seed = 42;
  opts.include_reorder = true;
  for (const BuiltinNemesis which :
       {BuiltinNemesis::kRandomPartitioner, BuiltinNemesis::kIsolateLeader,
        BuiltinNemesis::kRollingCrashRestart,
        BuiltinNemesis::kFlakyEverything}) {
    const FaultSchedule a = MakeBuiltinSchedule(which, nodes, leader, opts);
    const FaultSchedule b = MakeBuiltinSchedule(which, nodes, leader, opts);
    EXPECT_FALSE(a.events.empty());
    EXPECT_EQ(a.Describe(), b.Describe());
  }
  // Different seeds give different partitions (the schedule is seeded, not
  // hardwired).
  NemesisOptions other = opts;
  other.seed = 43;
  EXPECT_NE(MakeBuiltinSchedule(BuiltinNemesis::kRandomPartitioner, nodes,
                                leader, opts)
                .Describe(),
            MakeBuiltinSchedule(BuiltinNemesis::kRandomPartitioner, nodes,
                                leader, other)
                .Describe());
}

TEST(FaultScheduleTest, DescribeIsStable) {
  const FaultAction isolate =
      FaultAction::Isolate(NodeId{1, 2}, 500 * kMillisecond);
  EXPECT_EQ(isolate.Describe(), "isolate 1.2 500ms");
  const FaultAction restart = FaultAction::Restart(
      NodeId{2, 1}, 300 * kMillisecond, Cluster::RestartMode::kAmnesia);
  EXPECT_EQ(restart.Describe(), "restart 2.1 300ms amnesia");
  const FaultAction flaky =
      FaultAction::Flaky(NodeId::Invalid(), NodeId::Invalid(), 0.05, kSecond);
  EXPECT_EQ(flaky.Describe(), "flaky * p=0.05 1000ms");
}

// ---------------------------------------------------------------------------
// Byte-identical replay: a seeded nemesis run is a pure function of the
// seed — the PR-1 determinism auditor fingerprints every event (seq, time,
// rng draws) across two runs of the same scenario.
// ---------------------------------------------------------------------------

TEST(FaultReplayTest, SeededNemesisRunReplaysByteIdentically) {
  const auto scenario = [](TraceRecorder& rec) {
    Config cfg = Config::Lan9("paxos");
    cfg.nodes_per_zone = 5;
    cfg.client_timeout = 500 * kMillisecond;
    Cluster cluster(cfg);
    cluster.sim().AddObserver(&rec);

    NemesisOptions opts;
    opts.start = 500 * kMillisecond;
    opts.period = 700 * kMillisecond;
    opts.fault_duration = 300 * kMillisecond;
    opts.horizon = 2500 * kMillisecond;
    opts.seed = 7;
    AvailabilityTracker tracker;
    Nemesis nemesis(&cluster,
                    MakeBuiltinSchedule(BuiltinNemesis::kRandomPartitioner,
                                        cfg.Nodes(), cluster.leader(), opts),
                    &tracker);
    nemesis.Arm();

    BenchOptions options;
    options.workload = UniformWorkload(10, 0.5);
    options.clients_per_zone = 3;
    options.bootstrap_s = 0.3;
    options.warmup_s = 0.0;
    options.duration_s = 2.0;
    BenchRunner runner(&cluster, options);
    runner.Run();
  };
  const ReplayReport report = AuditReplay(scenario);
  EXPECT_TRUE(report.deterministic) << report.detail;
  EXPECT_GT(report.events_a, 1000u);
}

// ---------------------------------------------------------------------------
// Crash-restart recovery: every protocol must serve traffic again after
// the fault clears, with bounded time-to-recovery. Acceptance (a).
// ---------------------------------------------------------------------------

struct RecoveryCase {
  std::string protocol;
  /// The node to restart: the leader for single-leader protocols (the
  /// worst case), a follower for the grid/hierarchical protocols whose
  /// zone leadership is fixed by design (matching the paper's scoping).
  NodeId victim;
  bool grid = false;  ///< LanGrid3x3 instead of a 5-node LAN.
  /// Commit-pipeline batch_max. The batched variants crash the victim
  /// with multi-command slots in flight and queued intake — recovery must
  /// neither lose acknowledged commands nor double-apply replayed ones.
  int batch_max = 1;
};

class RecoveryTest : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(RecoveryTest, ServesTrafficAfterDurableRestart) {
  const RecoveryCase& param = GetParam();
  Config cfg = param.grid ? Config::LanGrid3x3(param.protocol)
                          : Config::Lan9(param.protocol);
  if (!param.grid) cfg.nodes_per_zone = 5;
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.params["batch_max"] = std::to_string(param.batch_max);
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  AvailabilityTracker tracker(100 * kMillisecond);
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{
      1500 * kMillisecond,
      FaultAction::Restart(param.victim, 400 * kMillisecond,
                           Cluster::RestartMode::kDurable)});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 100u) << param.protocol;

  // Traffic resumed: the last half-second of the timeline completed ops.
  const auto& timeline = tracker.timeline();
  ASSERT_GE(timeline.size(), 5u);
  std::size_t tail = 0;
  for (std::size_t i = timeline.size() - 5; i < timeline.size(); ++i) {
    tail += timeline[i].completed;
  }
  EXPECT_GT(tail, 0u) << param.protocol << ": no traffic after recovery";

  // Bounded time-to-recovery: downtime (400ms) + client timeout (500ms)
  // + election/repair timers, with headroom. -1 would mean "never".
  const Time ttr = tracker.MaxTimeToRecovery();
  EXPECT_GE(ttr, 0) << param.protocol << ": never recovered";
  EXPECT_LE(ttr, 2500 * kMillisecond) << param.protocol;

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << param.protocol << ": " << anomalies.size()
      << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, RecoveryTest,
    ::testing::Values(RecoveryCase{"paxos", NodeId{1, 1}, false},
                      RecoveryCase{"fpaxos", NodeId{1, 1}, false},
                      RecoveryCase{"raft", NodeId{1, 1}, false},
                      RecoveryCase{"mencius", NodeId{1, 2}, false},
                      RecoveryCase{"epaxos", NodeId{1, 2}, false},
                      RecoveryCase{"wpaxos", NodeId{1, 2}, true},
                      RecoveryCase{"wankeeper", NodeId{1, 2}, true},
                      RecoveryCase{"vpaxos", NodeId{1, 2}, true},
                      RecoveryCase{"paxos", NodeId{1, 1}, false, 8},
                      RecoveryCase{"raft", NodeId{1, 1}, false, 8},
                      RecoveryCase{"wankeeper", NodeId{1, 2}, true, 4}),
    [](const ::testing::TestParamInfo<RecoveryCase>& info) {
      return info.param.batch_max > 1 ? info.param.protocol + "_batched"
                                      : info.param.protocol;
    });

// Amnesia: the reborn node restarts from zero state and must relearn the
// log through the protocol's catch-up path — under a stable leader whose
// retransmission machinery feeds it.
TEST(RecoveryTest, PaxosFollowerAmnesiaRestartCatchesUp) {
  ScopedAudit audit;  // a reborn node that contradicts history must trip
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  AvailabilityTracker tracker;
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{
      1500 * kMillisecond,
      FaultAction::Restart(NodeId{1, 3}, 300 * kMillisecond,
                           Cluster::RestartMode::kAmnesia)});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 3.0;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 200u);
  EXPECT_EQ(nemesis.executed(), 1u);
  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  EXPECT_TRUE(lin.Check().empty());
}

// Clock skew: a follower whose timers run 3x slow must not break safety
// or stall a stable-leader cluster.
TEST(RecoveryTest, PaxosToleratesSkewedFollowerClock) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  Cluster cluster(cfg);
  FaultSchedule schedule;
  schedule.events.push_back(
      FaultEvent{0, FaultAction::ClockSkew(NodeId{1, 4}, 3.0)});
  Nemesis nemesis(&cluster, schedule, nullptr);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 2.0;
  options.record_ops = true;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  EXPECT_GT(result.completed, 200u);
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  EXPECT_TRUE(lin.Check().empty());
}

// ---------------------------------------------------------------------------
// Built-in nemeses: safety holds (linearizability + fail-fast invariant
// audits) while each nemesis does its worst. Acceptance (b).
// ---------------------------------------------------------------------------

struct NemesisCase {
  std::string protocol;
  BuiltinNemesis nemesis;
  bool include_reorder = false;
  const char* name = "";
  /// Commit-pipeline batch_max. Batched variants run the nemesis against
  /// multi-command slots: duplicated/reordered batch messages and replayed
  /// client requests must stay at-most-once across batch boundaries.
  int batch_max = 1;
};

class BuiltinNemesisTest : public ::testing::TestWithParam<NemesisCase> {};

TEST_P(BuiltinNemesisTest, StaysSafeAndRecovers) {
  const NemesisCase& param = GetParam();
  ScopedAudit audit;
  Config cfg = Config::Lan9(param.protocol);
  cfg.nodes_per_zone = 5;
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.params["batch_max"] = std::to_string(param.batch_max);
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  AvailabilityTracker tracker;
  NemesisOptions opts;
  opts.start = kSecond;
  opts.period = 1500 * kMillisecond;
  opts.fault_duration = 600 * kMillisecond;
  opts.horizon = 4 * kSecond;
  opts.seed = 0xC0FFEE;
  opts.include_reorder = param.include_reorder;
  Nemesis nemesis(&cluster,
                  MakeBuiltinSchedule(param.nemesis, cfg.Nodes(),
                                      cluster.leader(), opts),
                  &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.5;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(nemesis.executed(), 0u);
  EXPECT_GT(result.completed, 100u) << param.protocol;
  // Every injected fault recovered before the end of the run.
  EXPECT_GE(tracker.MaxTimeToRecovery(), 0) << param.protocol;

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << param.protocol << ": " << anomalies.size()
      << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(
    Nemeses, BuiltinNemesisTest,
    ::testing::Values(
        NemesisCase{"paxos", BuiltinNemesis::kRandomPartitioner, false,
                    "paxos_partitions"},
        NemesisCase{"paxos", BuiltinNemesis::kIsolateLeader, false,
                    "paxos_isolate_leader"},
        NemesisCase{"paxos", BuiltinNemesis::kRollingCrashRestart, false,
                    "paxos_rolling_restart"},
        NemesisCase{"paxos", BuiltinNemesis::kFlakyEverything, true,
                    "paxos_flaky"},
        NemesisCase{"raft", BuiltinNemesis::kRandomPartitioner, false,
                    "raft_partitions"},
        NemesisCase{"raft", BuiltinNemesis::kIsolateLeader, false,
                    "raft_isolate_leader"},
        NemesisCase{"raft", BuiltinNemesis::kRollingCrashRestart, false,
                    "raft_rolling_restart"},
        NemesisCase{"epaxos", BuiltinNemesis::kFlakyEverything, true,
                    "epaxos_flaky"},
        // Mencius depends on FIFO links: flaky/duplicate are fine, the
        // reorder fault must stay off (see mencius.h).
        NemesisCase{"mencius", BuiltinNemesis::kFlakyEverything, false,
                    "mencius_flaky"},
        NemesisCase{"paxos", BuiltinNemesis::kFlakyEverything, true,
                    "paxos_flaky_batched", 8},
        NemesisCase{"paxos", BuiltinNemesis::kRollingCrashRestart, false,
                    "paxos_rolling_restart_batched", 8},
        NemesisCase{"raft", BuiltinNemesis::kRandomPartitioner, false,
                    "raft_partitions_batched", 4}),
    [](const ::testing::TestParamInfo<NemesisCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Availability timeline end-to-end: the JSON records the injected outage.
// Acceptance (c).
// ---------------------------------------------------------------------------

TEST(AvailabilityTest, TimelineRecordsInjectedUnavailabilityWindow) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  // Long client timeout: while the leader is isolated, closed-loop clients
  // block instead of failing over, leaving a clean zero-throughput window.
  cfg.client_timeout = 2 * kSecond;
  cfg.params["election_timeout_ms"] = "10000";  // no follower takeover

  Cluster cluster(cfg);
  AvailabilityTracker tracker(100 * kMillisecond);
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{
      2 * kSecond, FaultAction::Isolate(cluster.leader(), kSecond)});
  schedule.events.push_back(FaultEvent{3 * kSecond, FaultAction::Heal()});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 5.0;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  runner.Run();

  // The isolation must show up as a zero-completion window overlapping
  // [2s, 3s].
  bool overlap = false;
  for (const AvailabilityTracker::Window& w :
       tracker.unavailability_windows()) {
    if (w.start < 3 * kSecond && w.end > 2 * kSecond) overlap = true;
  }
  EXPECT_TRUE(overlap) << "no unavailability window over the isolation; "
                       << tracker.ToJson();

  // Both nemesis events were recorded; the isolation recovered.
  ASSERT_EQ(tracker.faults().size(), 2u);
  EXPECT_NE(tracker.faults()[0].description.find("isolate"),
            std::string::npos);
  EXPECT_GT(tracker.faults()[0].recovered_at, 2 * kSecond);

  const std::string json = tracker.ToJson();
  EXPECT_NE(json.find("\"unavailability_windows\":[{"), std::string::npos);
  EXPECT_NE(json.find("isolate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sharding/relay faults: a relay crashing mid-aggregation, and migrations
// racing the random partitioner.
// ---------------------------------------------------------------------------

// A relay-tree cluster loses a follower — with R=3 over 9 nodes every
// follower takes relay duty in rotation, so the isolation is guaranteed
// to hit a node while it owes the leader aggregated acks. Retransmissions
// route around it through rotated trees; after the heal the log must
// still be one linearizable history.
TEST(ShardFaultTest, RelayCrashDuringAckAggregationStaysSafe) {
  ScopedAudit audit;
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 9;
  cfg.params["relay_fanout"] = "3";
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  AvailabilityTracker tracker;
  FaultSchedule schedule;
  // Isolate a follower (never the leader: the point is to kill a relay,
  // not force an election) mid-traffic, twice, healing in between.
  schedule.events.push_back(FaultEvent{
      1 * kSecond, FaultAction::Isolate(NodeId{1, 4}, 600 * kMillisecond)});
  schedule.events.push_back(
      FaultEvent{1700 * kMillisecond, FaultAction::Heal()});
  schedule.events.push_back(FaultEvent{
      2400 * kMillisecond,
      FaultAction::Isolate(NodeId{1, 7}, 600 * kMillisecond)});
  schedule.events.push_back(
      FaultEvent{3100 * kMillisecond, FaultAction::Heal()});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_EQ(nemesis.executed(), 4u);
  // Progress through both relay outages (a 9-node majority never breaks).
  EXPECT_GT(result.completed, 1000u);
  EXPECT_GE(tracker.MaxTimeToRecovery(), 0);

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

// Live migrations racing the random partitioner on a sharded cluster:
// handoffs start while links are cut, drains stall, installs retry — and
// every per-key history (including the migrated keys') must stay
// linearizable. Acceptance: "per-key linearizability holds across live
// migration under a random-partitioner nemesis".
TEST(ShardFaultTest, MigrationUnderRandomPartitionerStaysLinearizable) {
  ScopedAudit audit;
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 3;
  cfg.params["groups"] = "3";
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  AvailabilityTracker tracker;
  NemesisOptions opts;
  opts.start = kSecond;
  opts.period = 1500 * kMillisecond;
  opts.fault_duration = 400 * kMillisecond;
  opts.horizon = 4 * kSecond;
  opts.seed = 0xC0FFEE;
  FaultSchedule schedule = MakeBuiltinSchedule(
      BuiltinNemesis::kRandomPartitioner, cfg.Nodes(), cluster.leader(), opts);
  // Interleave fenced handoffs with the partitions: keys of the benchmark
  // workload (0..24), pushed round-robin across the groups, some while a
  // partition is up, some while the network is whole. Destinations the
  // key already lives in are no-ops by design — the schedule stays valid
  // without knowing the hash.
  for (int i = 0; i < 8; ++i) {
    const Key key = static_cast<Key>(3 * i);
    const int to_group = 1 + i % 3;
    schedule.events.push_back(
        FaultEvent{kSecond + i * 450 * kMillisecond,
                   FaultAction::MigrateKey(key, to_group)});
  }
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 6;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 5.0;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(nemesis.executed(), 8u);  // partitions + heals + migrations
  EXPECT_GT(result.completed, 500u);

  // No migration may end the run wedged: every fence lifted, every
  // handoff either completed or cleanly abandoned.
  const ShardCoordinator& coord = *cluster.coordinator();
  for (Key key = 0; key < 25; ++key) {
    EXPECT_FALSE(coord.MigrationActive(key)) << "key " << key << " wedged";
    EXPECT_FALSE(coord.map().IsFenced(key)) << "key " << key << " fenced";
  }
  EXPECT_GT(coord.stats().started, 0u);
  EXPECT_EQ(coord.stats().started,
            coord.stats().completed + coord.stats().aborted);

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

}  // namespace
}  // namespace paxi
