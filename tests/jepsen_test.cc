// Jepsen-style nemesis suite (the paper cites Jepsen as the availability/
// consistency tool its failure-injection primitives replace, §4.2): run
// live traffic while a nemesis randomly freezes minorities of nodes and
// degrades links, then audit everything the clients observed. Strongly
// consistent protocols must stay linearizable no matter what the nemesis
// does to a minority.

#include <memory>
#include <string>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace paxi {
namespace {

/// Schedules random minority crashes and crash-restarts, minority-side
/// partitions (symmetric and directed), plus link drops/slows/flakiness
/// over the run. Everything stays within a minority budget so a quorum
/// survives each window. Deterministic per seed.
void UnleashNemesis(Cluster& cluster, Time duration, std::uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);  // kept alive by the closures
  Simulator& sim = cluster.sim();
  const auto nodes = cluster.nodes();
  const std::size_t minority = (nodes.size() - 1) / 2;

  for (Time t = 200 * kMillisecond; t < duration; t += 300 * kMillisecond) {
    sim.At(sim.Now() + t, [&cluster, rng, nodes, minority]() {
      // Freeze a random minority (never the quorum) for a short window.
      std::vector<NodeId> shuffled = nodes;
      rng->Shuffle(&shuffled);
      auto crashes = static_cast<std::size_t>(rng->UniformInt(0, minority));
      for (std::size_t i = 0; i < crashes; ++i) {
        cluster.CrashNode(shuffled[i], 150 * kMillisecond);
      }
      // Sometimes put one more minority member through the full
      // crash-restart (durable log) path instead of a plain freeze.
      if (crashes < minority && rng->Bernoulli(0.5)) {
        cluster.RestartNode(shuffled[crashes], 150 * kMillisecond,
                            Cluster::RestartMode::kDurable);
        ++crashes;
      }
      // Occasionally cut a minority clean off the rest — symmetric or
      // one-way (asymmetric partitions catch bugs that clean splits
      // hide). The cut side is drawn from the tail of the shuffle so it
      // is disjoint from the crashed prefix and the combined downed and
      // cut nodes still leave a live connected quorum.
      if (crashes < minority && rng->Bernoulli(0.4)) {
        const auto cut = static_cast<std::size_t>(rng->UniformInt(
            1, static_cast<std::int64_t>(minority - crashes)));
        const std::vector<NodeId> side(shuffled.end() - static_cast<long>(cut),
                                       shuffled.end());
        const std::vector<NodeId> rest(shuffled.begin(),
                                       shuffled.end() - static_cast<long>(cut));
        if (rng->Bernoulli(0.5)) {
          cluster.transport().Partition({side, rest}, 120 * kMillisecond);
        } else {
          cluster.transport().PartitionDirected(side, rest,
                                                120 * kMillisecond);
        }
      }
      // Degrade a few random links.
      for (int i = 0; i < 6; ++i) {
        const NodeId a =
            nodes[static_cast<std::size_t>(rng->UniformInt(
                0, static_cast<std::int64_t>(nodes.size()) - 1))];
        const NodeId b =
            nodes[static_cast<std::size_t>(rng->UniformInt(
                0, static_cast<std::int64_t>(nodes.size()) - 1))];
        if (a == b) continue;
        switch (rng->UniformInt(0, 2)) {
          case 0:
            cluster.transport().Drop(a, b, 100 * kMillisecond);
            break;
          case 1:
            cluster.transport().Flaky(a, b, 0.4, 150 * kMillisecond);
            break;
          default:
            cluster.transport().Slow(a, b, 3 * kMillisecond,
                                     150 * kMillisecond);
            break;
        }
      }
    });
  }
}

class NemesisTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NemesisTest, StaysLinearizableUnderChaos) {
  Config cfg = Config::Lan9(GetParam());
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;

  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/25, /*write_ratio=*/0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;  // audit everything, chaos included
  options.duration_s = 4.0;
  options.record_ops = true;

  Cluster cluster(cfg);
  UnleashNemesis(cluster, 4 * kSecond, /*seed=*/0xC0FFEE);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  // Progress despite the nemesis (minorities only).
  EXPECT_GT(result.completed, 100u) << GetParam();

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << GetParam() << ": " << anomalies.size()
      << " anomalous reads under chaos, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(Protocols, NemesisTest,
                         ::testing::Values("paxos", "fpaxos", "raft",
                                           "epaxos", "mencius"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

class HierarchicalNemesisTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(HierarchicalNemesisTest, StaysLinearizableUnderFollowerChaos) {
  // WanKeeper/VPaxos pin zone leadership to z.1 by design ("does not
  // tolerate region failure", §5) — the nemesis therefore only restarts
  // followers and degrades links, mirroring the paper's deployment
  // assumptions for hierarchical protocols.
  Config cfg = Config::LanGrid3x3(GetParam());
  cfg.client_timeout = 500 * kMillisecond;
  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 3;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;

  Cluster cluster(cfg);
  Simulator& sim = cluster.sim();
  auto rng = std::make_shared<Rng>(11);
  for (Time t = 200 * kMillisecond; t < 4 * kSecond;
       t += 250 * kMillisecond) {
    sim.At(sim.Now() + t, [&cluster, rng]() {
      // Crash-restart one random follower through the durable path.
      const int zone = static_cast<int>(rng->UniformInt(1, 3));
      const int node = static_cast<int>(rng->UniformInt(2, 3));
      cluster.RestartNode(NodeId{zone, node}, 150 * kMillisecond,
                          Cluster::RestartMode::kDurable);
      // And degrade one random link (any pair; a briefly deaf leader
      // link stalls its zone but must heal without losing history).
      const NodeId a{static_cast<int>(rng->UniformInt(1, 3)),
                     static_cast<int>(rng->UniformInt(1, 3))};
      const NodeId b{static_cast<int>(rng->UniformInt(1, 3)),
                     static_cast<int>(rng->UniformInt(1, 3))};
      if (!(a == b)) {
        if (rng->Bernoulli(0.5)) {
          cluster.transport().Flaky(a, b, 0.3, 200 * kMillisecond);
        } else {
          cluster.transport().Drop(a, b, 100 * kMillisecond);
        }
      }
    });
  }
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  EXPECT_GT(result.completed, 100u) << GetParam();
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << GetParam() << ": " << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(Hierarchical, HierarchicalNemesisTest,
                         ::testing::Values("wankeeper", "vpaxos"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(NemesisTest, WPaxosGridUnderChaos) {
  // Multi-leader grid variant: nemesis limited to link faults plus
  // non-leader freezes (WPaxos zone leadership is static by design, like
  // the paper's deployment; leader recovery is phase-1-on-demand).
  Config cfg = Config::LanGrid3x3("wpaxos");
  cfg.client_timeout = 500 * kMillisecond;
  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 3;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;

  Cluster cluster(cfg);
  Simulator& sim = cluster.sim();
  auto rng = std::make_shared<Rng>(7);
  for (Time t = 200 * kMillisecond; t < 4 * kSecond;
       t += 250 * kMillisecond) {
    sim.At(sim.Now() + t, [&cluster, rng]() {
      // Freeze one random follower (node index 2 or 3 in a zone).
      const int zone = static_cast<int>(rng->UniformInt(1, 3));
      const int node = static_cast<int>(rng->UniformInt(2, 3));
      cluster.CrashNode(NodeId{zone, node}, 150 * kMillisecond);
      // And flake one random inter-node link.
      const NodeId a{static_cast<int>(rng->UniformInt(1, 3)),
                     static_cast<int>(rng->UniformInt(1, 3))};
      const NodeId b{static_cast<int>(rng->UniformInt(1, 3)),
                     static_cast<int>(rng->UniformInt(1, 3))};
      if (!(a == b)) cluster.transport().Flaky(a, b, 0.3, 200 * kMillisecond);
    });
  }
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  EXPECT_GT(result.completed, 100u);
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

}  // namespace
}  // namespace paxi
