// Client library behavior: request/reply matching, retries with
// round-robin and leader hints, timeout reporting.

#include <functional>
#include <memory>
#include <string>

#include "core/client.h"
#include "gtest/gtest.h"
#include "protocols/paxos/paxos.h"
#include "test_util.h"

namespace paxi {
namespace {

TEST(ClientTest, FillsCommandIdentity) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  EXPECT_EQ(client->client_id(), 1);
  EXPECT_EQ(client->zone(), 1);
  EXPECT_EQ(client->id().node, Client::kClientNodeBase + 1);

  auto reply = PutAndWait(cluster, client, 1, "x", cluster.leader());
  EXPECT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.attempts, 1);
  EXPECT_EQ(client->issued(), 1u);
  EXPECT_EQ(client->timeouts(), 0u);
}

TEST(ClientTest, DistinctClientsGetDistinctIds) {
  Cluster cluster(Config::Lan9("paxos"));
  Client* c1 = cluster.NewClient(1);
  Client* c2 = cluster.NewClient(1);
  EXPECT_NE(c1->client_id(), c2->client_id());
  EXPECT_NE(c1->id(), c2->id());
}

TEST(ClientTest, RetriesToAnotherNodeAfterTimeout) {
  Config cfg = Config::Lan9("paxos");
  cfg.client_timeout = 200 * kMillisecond;
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);

  // Sever the client's link to the leader: the first attempt dies, the
  // retry lands on 1.2 which forwards to the leader.
  cluster.transport().Drop(client->id(), cluster.leader(), 30 * kSecond);
  auto reply = PutAndWait(cluster, client, 1, "retry", cluster.leader());
  EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_GT(reply.attempts, 1);
  EXPECT_GE(client->timeouts(), 1u);
  EXPECT_GT(ToMillis(reply.latency), 200.0);
}

TEST(ClientTest, ReportsTimedOutAfterMaxAttempts) {
  Config cfg = Config::Lan9("paxos");
  cfg.client_timeout = 100 * kMillisecond;
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  // Isolate the client from everyone.
  for (const NodeId& id : cluster.nodes()) {
    cluster.transport().Drop(client->id(), id, 60 * kSecond);
  }
  auto reply = PutAndWait(cluster, client, 1, "void", cluster.leader());
  EXPECT_TRUE(reply.status.IsTimedOut());
  EXPECT_EQ(reply.attempts, Client::kMaxAttempts);
}

TEST(ClientTest, LateRepliesAfterTimeoutAreIgnored) {
  Config cfg = Config::Lan9("paxos");
  cfg.client_timeout = 5 * kMillisecond;  // shorter than the slow path
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  // Slow the reply path well past the timeout: the client retries, and
  // the original (late) reply must not double-complete the request.
  cluster.transport().Slow(cluster.leader(), client->id(),
                           50 * kMillisecond, kSecond);
  int completions = 0;
  Command cmd;
  cmd.op = Command::Op::kPut;
  cmd.key = 3;
  cmd.value = "late";
  client->Issue(cmd, cluster.leader(),
                [&](const Client::Reply&) { ++completions; });
  cluster.RunFor(5 * kSecond);
  EXPECT_EQ(completions, 1);
}

TEST(ClientTest, ConcurrentRequestsMatchReplies) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  std::map<Key, Value> got;
  for (Key k = 1; k <= 10; ++k) {
    Command cmd;
    cmd.op = Command::Op::kPut;
    cmd.key = k;
    cmd.value = "w" + std::to_string(k);
    client->Issue(cmd, cluster.leader(), [](const Client::Reply&) {});
  }
  cluster.RunFor(kSecond);
  for (Key k = 1; k <= 10; ++k) {
    Command cmd;
    cmd.op = Command::Op::kGet;
    cmd.key = k;
    client->Issue(cmd, cluster.leader(),
                  [&got, k](const Client::Reply& r) { got[k] = r.value; });
  }
  cluster.RunFor(kSecond);
  ASSERT_EQ(got.size(), 10u);
  for (Key k = 1; k <= 10; ++k) {
    EXPECT_EQ(got[k], "w" + std::to_string(k)) << k;
  }
}

// Closed-loop client cut off from every replica: each attempt times out
// and the next request starts as soon as the previous one gives up.
// Returns how many attempts timed out inside a fixed virtual window — the
// size of the retry storm.
std::size_t RetryStormTimeouts(int backoff_ms) {
  Config cfg = Config::Lan9("paxos");
  cfg.client_timeout = 50 * kMillisecond;
  cfg.params["client_backoff_ms"] = std::to_string(backoff_ms);
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  for (const NodeId& n : cluster.nodes()) {
    cluster.transport().Drop(client->id(), n, 10 * kSecond);
  }
  // The chain captures a raw self-pointer, not the shared_ptr: a
  // self-owning std::function cycle would never be freed (LeakSanitizer
  // flags it). The local `issue` is the sole owner and outlives RunFor,
  // which is the only place callbacks can fire.
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&cluster, client, self = issue.get()]() {
    Command cmd;
    cmd.op = Command::Op::kPut;
    cmd.key = 1;
    cmd.value = "storm";
    client->Issue(std::move(cmd), cluster.leader(),
                  [self](const Client::Reply&) { (*self)(); });
  };
  (*issue)();
  cluster.RunFor(3 * kSecond);
  return client->timeouts();
}

TEST(ClientTest, BackoffThrottlesRetryStorm) {
  // With backoff disabled a dead cluster eats one attempt per timeout
  // interval; exponential backoff with jitter must thin that storm
  // substantially over the same window.
  const std::size_t without = RetryStormTimeouts(0);
  const std::size_t with = RetryStormTimeouts(25);
  EXPECT_GT(without, 40u);  // ~one attempt per 50ms over 3s
  EXPECT_LT(with, without * 2 / 3)
      << "backoff did not reduce retry volume: " << with << " vs " << without;
}

TEST(ClientTest, NonLeaderRejectionFollowsHint) {
  // Raft followers without a fresh leader reject with a hint; the client
  // must retry and eventually succeed.
  Config cfg = Config::Lan9("raft");
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  // Send to a follower right away: it forwards (leader known) or rejects
  // with a hint; either way one logical request completes once.
  auto reply = PutAndWait(cluster, client, 1, "hinted", NodeId{1, 5});
  EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
}

}  // namespace
}  // namespace paxi
