#include <cmath>

#include "gtest/gtest.h"
#include "model/flowchart.h"
#include "model/formulas.h"
#include "model/korder.h"
#include "model/protocol_model.h"
#include "model/queueing.h"

namespace paxi::model {
namespace {

// --- Queueing (Table 1) --------------------------------------------------------

TEST(QueueingTest, ZeroLoadZeroWait) {
  QueueParams p{.lambda = 0.0, .mu = 100.0};
  for (auto kind : {QueueKind::kMM1, QueueKind::kMD1, QueueKind::kMG1,
                    QueueKind::kGG1}) {
    EXPECT_EQ(WaitTime(kind, p), 0.0);
  }
}

TEST(QueueingTest, UnstableQueueIsInfinite) {
  QueueParams p{.lambda = 120.0, .mu = 100.0};
  EXPECT_TRUE(std::isinf(WaitTime(QueueKind::kMD1, p)));
}

TEST(QueueingTest, MM1MatchesClosedForm) {
  // M/M/1: Wq = rho / (mu - lambda); at lambda=50, mu=100: 0.01 s.
  QueueParams p{.lambda = 50.0, .mu = 100.0};
  EXPECT_NEAR(WaitTime(QueueKind::kMM1, p), 0.01, 1e-12);
}

TEST(QueueingTest, MD1IsHalfOfMM1) {
  // Deterministic service halves the queueing delay of exponential.
  QueueParams p{.lambda = 70.0, .mu = 100.0};
  EXPECT_NEAR(WaitTime(QueueKind::kMD1, p),
              WaitTime(QueueKind::kMM1, p) / 2.0, 1e-12);
}

TEST(QueueingTest, MG1InterpolatesWithVariance) {
  // M/G/1 with sigma = 0 equals M/D/1; with sigma = 1/mu equals M/M/1.
  QueueParams p{.lambda = 60.0, .mu = 100.0, .service_sigma = 0.0};
  EXPECT_NEAR(WaitTime(QueueKind::kMG1, p), WaitTime(QueueKind::kMD1, p),
              1e-12);
  p.service_sigma = 1.0 / p.mu;
  EXPECT_NEAR(WaitTime(QueueKind::kMG1, p), WaitTime(QueueKind::kMM1, p),
              1e-12);
}

TEST(QueueingTest, WaitGrowsWithLoad) {
  double prev = 0.0;
  for (double lambda : {10.0, 30.0, 50.0, 70.0, 90.0, 99.0}) {
    QueueParams p{.lambda = lambda, .mu = 100.0, .service_sigma = 0.002,
                  .ca2 = 1.0, .cs2 = 0.04};
    for (auto kind : {QueueKind::kMM1, QueueKind::kMD1, QueueKind::kMG1,
                      QueueKind::kGG1}) {
      EXPECT_GT(WaitTime(kind, p), 0.0);
    }
    const double wq = WaitTime(QueueKind::kMD1, p);
    EXPECT_GT(wq, prev);
    prev = wq;
  }
}

TEST(QueueingTest, Names) {
  EXPECT_STREQ(QueueKindName(QueueKind::kMM1), "M/M/1");
  EXPECT_STREQ(QueueKindName(QueueKind::kGG1), "G/G/1");
}

// --- k-order statistics ----------------------------------------------------------

TEST(KOrderTest, MinAndMaxBracketMean) {
  Rng rng(3);
  const double lo = ExpectedKthOrderStatisticNormal(1, 8, 10.0, 1.0, rng);
  const double hi = ExpectedKthOrderStatisticNormal(8, 8, 10.0, 1.0, rng);
  EXPECT_LT(lo, 10.0);
  EXPECT_GT(hi, 10.0);
}

TEST(KOrderTest, MonotoneInK) {
  Rng rng(5);
  double prev = -1e9;
  for (std::size_t k = 1; k <= 8; ++k) {
    const double v = ExpectedKthOrderStatisticNormal(k, 8, 5.0, 0.5, rng);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(KOrderTest, MedianOfSymmetricIsMean) {
  Rng rng(7);
  const double v =
      ExpectedKthOrderStatisticNormal(5, 9, 20.0, 2.0, rng, 50000);
  EXPECT_NEAR(v, 20.0, 0.05);
}

TEST(KOrderTest, KthSmallest) {
  EXPECT_DOUBLE_EQ(KthSmallest({5.0, 1.0, 3.0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(KthSmallest({5.0, 1.0, 3.0}, 2), 3.0);
  EXPECT_DOUBLE_EQ(KthSmallest({5.0, 1.0, 3.0}, 3), 5.0);
}

// --- Formulas (§6) ----------------------------------------------------------------

TEST(FormulasTest, PaperValuesAtNineNodes) {
  // §6.1: L(Paxos) = 4, L(EPaxos) = 4/3 (1+c), L(WPaxos) = 4/3 at N = 9.
  EXPECT_DOUBLE_EQ(LoadPaxos(9), 4.0);
  EXPECT_NEAR(LoadEPaxos(9, 0.0), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(LoadEPaxos(9, 1.0), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(LoadWPaxos(9, 3), 4.0 / 3.0, 1e-12);
}

TEST(FormulasTest, GeneralFormMatchesSpecializations) {
  // Paxos: L=1, Q=floor(N/2)+1, c=0.
  EXPECT_DOUBLE_EQ(Load(1, 5, 0.0), LoadPaxos(9));
  // EPaxos: L=N, Q=floor(N/2)+1.
  EXPECT_NEAR(Load(9, 5, 0.3), LoadEPaxos(9, 0.3), 1e-12);
  // WPaxos 3x3: L=3, Q=N/L=3.
  EXPECT_NEAR(Load(3, 3, 0.0), LoadWPaxos(9, 3), 1e-12);
}

TEST(FormulasTest, CapacityIsReciprocal) {
  EXPECT_DOUBLE_EQ(Capacity(1, 5, 0.0), 0.25);
  EXPECT_GT(Capacity(3, 3, 0.0), Capacity(1, 5, 0.0));  // WPaxos > Paxos
}

TEST(FormulasTest, MoreLeadersReduceLoadButConflictsRaiseIt) {
  EXPECT_LT(Load(3, 5, 0.0), Load(1, 5, 0.0));
  EXPECT_LT(Load(9, 5, 0.0), Load(3, 5, 0.0));
  EXPECT_GT(Load(9, 5, 0.5), Load(9, 5, 0.0));
  // The §6.1 interplay: going to N leaders at high conflict can be worse
  // than fewer leaders at no conflict.
  EXPECT_GT(LoadEPaxos(9, 1.0), LoadWPaxos(9, 3));
}

TEST(FormulasTest, LatencyFormula) {
  // Formula 7 at c=0, l=1: only DQ remains.
  EXPECT_DOUBLE_EQ(LatencyFormula(0.0, 1.0, 50.0, 5.0), 5.0);
  // l=0: full DL+DQ.
  EXPECT_DOUBLE_EQ(LatencyFormula(0.0, 0.0, 50.0, 5.0), 55.0);
  // Conflicts multiply.
  EXPECT_DOUBLE_EQ(LatencyFormula(1.0, 0.0, 50.0, 5.0), 110.0);
  // Locality helps monotonically.
  EXPECT_GT(LatencyFormula(0.0, 0.2, 50.0, 5.0),
            LatencyFormula(0.0, 0.8, 50.0, 5.0));
}

// --- Protocol models ---------------------------------------------------------------

ModelEnv Lan9Env() {
  ModelEnv env;
  env.topology = Topology::Lan(1);
  env.zones = 1;
  env.nodes_per_zone = 9;
  return env;
}

ModelEnv Grid3x3Env() {
  ModelEnv env;
  env.topology = Topology::Lan(3);
  env.zones = 3;
  env.nodes_per_zone = 3;
  return env;
}

ModelEnv Wan5Env() {
  ModelEnv env;
  env.topology = Topology::WanFiveRegions();
  env.zones = 5;
  env.nodes_per_zone = 3;
  return env;
}

TEST(ProtocolModelTest, PaxosServiceTimeFormula) {
  PaxosModel model(Lan9Env(), NodeId{1, 1});
  // ts = 2*15 + 9*9 + 2*9*0.8 = 125.4 us.
  EXPECT_NEAR(model.EffectiveServiceUs(), 125.4, 0.01);
  EXPECT_NEAR(model.MaxThroughput(), 1e6 / 125.4, 1.0);
}

TEST(ProtocolModelTest, PaxosLanSaturatesNear8k) {
  // §5.1 / Fig. 7: single-leader max throughput around 8000 ops/s.
  PaxosModel model(Lan9Env(), NodeId{1, 1});
  EXPECT_GT(model.MaxThroughput(), 7000.0);
  EXPECT_LT(model.MaxThroughput(), 9000.0);
}

TEST(ProtocolModelTest, LatencyMonotoneInLoad) {
  PaxosModel model(Lan9Env(), NodeId{1, 1});
  double prev = 0.0;
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 0.97}) {
    const double lat = model.LatencyMs(model.MaxThroughput() * frac);
    EXPECT_GT(lat, prev);
    prev = lat;
  }
  EXPECT_TRUE(std::isinf(model.LatencyMs(model.MaxThroughput() * 1.01)));
}

TEST(ProtocolModelTest, WPaxosOutscalesPaxosSublinearly) {
  // §5.2: multi-leader beats single-leader but not by L times.
  PaxosModel paxos(Lan9Env(), NodeId{1, 1});
  WPaxosModel wpaxos(Grid3x3Env(), /*fz=*/0, /*locality=*/1.0);
  const double ratio = wpaxos.MaxThroughput() / paxos.MaxThroughput();
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(ProtocolModelTest, EPaxosConflictDegradesThroughput) {
  // Fig. 12: ~40% capacity loss from c=0 to c=1.
  EPaxosModel none(Wan5Env(), 0.0);
  EPaxosModel full(Wan5Env(), 1.0);
  const double drop = 1.0 - full.MaxThroughput() / none.MaxThroughput();
  EXPECT_GT(drop, 0.25);
  EXPECT_LT(drop, 0.55);
}

TEST(ProtocolModelTest, EPaxosBeatsPaxosThroughputEvenAtFullConflict) {
  // §5.2: "EPaxos shows better throughput than Paxos in our model even
  // with 100% conflict" — before the processing penalty.
  PaxosModel paxos(Lan9Env(), NodeId{1, 1});
  EPaxosModel epaxos(Lan9Env(), 1.0, /*penalty=*/1.0);
  EXPECT_GT(epaxos.MaxThroughput(), paxos.MaxThroughput());
  // With the penalty, EPaxos degrades greatly.
  EPaxosModel penalized(Lan9Env(), 1.0, /*penalty=*/2.0);
  EXPECT_LT(penalized.MaxThroughput(), epaxos.MaxThroughput() * 0.6);
}

TEST(ProtocolModelTest, FPaxosLatencyEdgeIsSmallInLan) {
  // §5.2 "a modest average latency improvement" for FPaxos in LAN.
  PaxosModel paxos(Lan9Env(), NodeId{1, 1});
  PaxosModel fpaxos(Lan9Env(), NodeId{1, 1}, /*q2=*/3);
  const double lambda = 2000.0;
  const double gain = paxos.LatencyMs(lambda) - fpaxos.LatencyMs(lambda);
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(gain, 0.2);
}

TEST(ProtocolModelTest, WanLeaderPlacementDominatesLatency) {
  // Fig. 10: >100 ms spread between single-leader Paxos (CA leader) and
  // WPaxos with locality.
  PaxosModel paxos(Wan5Env(), NodeId{3, 1});  // California leader
  WPaxosModel wpaxos(Wan5Env(), /*fz=*/0, /*locality=*/0.7);
  const double paxos_lat = paxos.LatencyMs(paxos.MaxThroughput() * 0.2);
  const double wpaxos_lat = wpaxos.LatencyMs(wpaxos.MaxThroughput() * 0.2);
  EXPECT_GT(paxos_lat - wpaxos_lat, 50.0);
  EXPECT_GT(paxos_lat, 100.0);
}

TEST(ProtocolModelTest, WPaxosFzRaisesWanLatency) {
  WPaxosModel fz0(Wan5Env(), 0, 1.0);
  WPaxosModel fz1(Wan5Env(), 1, 1.0);
  EXPECT_GT(fz1.NetworkLatencyMs(), fz0.NetworkLatencyMs() + 5.0);
}

TEST(ProtocolModelTest, CurveShapesAreSane) {
  WanKeeperModel model(Wan5Env(), /*master_zone=*/2, /*locality=*/0.8);
  const auto curve = model.Curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].throughput, curve[i - 1].throughput);
    EXPECT_GE(curve[i].latency_ms, curve[i - 1].latency_ms);
  }
}

// --- Flowchart (Fig. 14) -----------------------------------------------------------

TEST(FlowchartTest, AllPathsReachARecommendation) {
  for (bool consensus : {false, true}) {
    for (bool wan : {false, true}) {
      for (bool reads : {false, true}) {
        for (bool locality : {false, true}) {
          for (bool dynamic : {false, true}) {
            for (bool failure : {false, true}) {
              DeploymentProfile p{consensus, wan, reads, locality, dynamic,
                                  failure};
              const auto rec = RecommendProtocol(p);
              EXPECT_FALSE(rec.protocols.empty());
              EXPECT_FALSE(rec.rationale.empty());
            }
          }
        }
      }
    }
  }
}

TEST(FlowchartTest, PaperExamples) {
  DeploymentProfile lan;
  lan.wan = false;
  EXPECT_EQ(RecommendProtocol(lan).protocols[0], "Multi-Paxos");

  DeploymentProfile no_consensus;
  no_consensus.need_consensus = false;
  EXPECT_EQ(RecommendProtocol(no_consensus).protocols[0], "Atomic Storage");

  DeploymentProfile read_heavy_wan;
  read_heavy_wan.wan = true;
  read_heavy_wan.read_heavy = true;
  const auto rec = RecommendProtocol(read_heavy_wan);
  EXPECT_NE(std::find(rec.protocols.begin(), rec.protocols.end(), "EPaxos"),
            rec.protocols.end());

  DeploymentProfile static_locality;
  static_locality.wan = true;
  static_locality.workload_locality = true;
  static_locality.dynamic_locality = false;
  EXPECT_EQ(RecommendProtocol(static_locality).protocols[0], "Paxos Groups");

  DeploymentProfile hierarchical;
  hierarchical.wan = true;
  hierarchical.workload_locality = true;
  hierarchical.dynamic_locality = true;
  hierarchical.region_failure_concern = false;
  const auto rec2 = RecommendProtocol(hierarchical);
  EXPECT_NE(std::find(rec2.protocols.begin(), rec2.protocols.end(),
                      "WanKeeper"),
            rec2.protocols.end());

  DeploymentProfile full;
  full.wan = true;
  full.workload_locality = true;
  full.dynamic_locality = true;
  full.region_failure_concern = true;
  EXPECT_EQ(RecommendProtocol(full).protocols[0], "WPaxos");
}

}  // namespace
}  // namespace paxi::model
