#include <map>

#include "common/stats.h"
#include "gtest/gtest.h"
#include "workload/distributions.h"
#include "workload/workload.h"

namespace paxi {
namespace {

TEST(DistributionsTest, UniformCoversPool) {
  UniformKeys dist(10, 100);
  Rng rng(1);
  std::map<Key, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[dist.Next(rng, 0)];
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [key, count] : counts) {
    EXPECT_GE(key, 10);
    EXPECT_LT(key, 110);
    EXPECT_NEAR(count, 1000, 250);
  }
}

TEST(DistributionsTest, ZipfianIsHeadHeavy) {
  ZipfianKeys dist(0, 1000, 2.0, 1.0);
  Rng rng(2);
  std::map<Key, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[dist.Next(rng, 0)];
  EXPECT_GT(counts[0], counts[10] * 5);
  EXPECT_GT(counts[0], n / 3);
}

TEST(DistributionsTest, NormalCentersOnMu) {
  NormalKeys dist(0, 1000, 500.0, 30.0);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(dist.Next(rng, 0)));
  }
  EXPECT_NEAR(stats.mean(), 500.0, 2.0);
  EXPECT_NEAR(stats.stddev(), 30.0, 2.0);
}

TEST(DistributionsTest, MovingNormalDrifts) {
  NormalKeys dist(0, 1000, 100.0, 5.0, /*move=*/true, /*speed_ms=*/1.0);
  Rng rng(4);
  RunningStats early, late;
  for (int i = 0; i < 2000; ++i) {
    early.Add(static_cast<double>(dist.Next(rng, 0)));
    late.Add(static_cast<double>(dist.Next(rng, 200 * kMillisecond)));
  }
  EXPECT_NEAR(early.mean(), 100.0, 3.0);
  EXPECT_NEAR(late.mean(), 300.0, 3.0);  // drifted 200 keys in 200 ms
}

TEST(DistributionsTest, ExponentialFavorsLowKeys) {
  ExponentialKeys dist(0, 1000, 0.01);
  Rng rng(5);
  int low = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    const Key k = dist.Next(rng, 0);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 1000);
    if (k < 100) ++low;
  }
  EXPECT_GT(low, total / 2);
}

TEST(DistributionsTest, FactoryByName) {
  Rng rng(6);
  for (const char* name : {"uniform", "zipfian", "normal", "exponential",
                           "unknown-falls-back"}) {
    auto dist = MakeDistribution(name, 0, 50, 25, 10, false, 500, 2, 1);
    ASSERT_NE(dist, nullptr) << name;
    for (int i = 0; i < 100; ++i) {
      const Key k = dist->Next(rng, 0);
      EXPECT_GE(k, 0) << name;
      EXPECT_LT(k, 50) << name;
    }
  }
}

// --- WorkloadGenerator ------------------------------------------------------------

TEST(WorkloadTest, WriteRatioHolds) {
  WorkloadGenerator gen(UniformWorkload(100, 0.3), 1, 1, 42);
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(0).IsWrite()) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.3, 0.02);
}

TEST(WorkloadTest, WrittenValuesAreUnique) {
  WorkloadGenerator a(UniformWorkload(10, 1.0), 1, 1, 42);
  WorkloadGenerator b(UniformWorkload(10, 1.0), 1, 2, 42);
  std::set<Value> values;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(values.insert(a.Next(0).value).second);
    ASSERT_TRUE(values.insert(b.Next(0).value).second);
  }
}

TEST(WorkloadTest, ConflictModeTargetsHotKey) {
  auto spec = ConflictWorkload(/*conflict_ratio=*/0.4, /*zones=*/5);
  WorkloadGenerator gen(spec, 3, 1, 7);
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Command cmd = gen.Next(0);
    EXPECT_TRUE(cmd.IsWrite());  // conflict workloads write
    if (cmd.key == spec.conflict_key) {
      ++hot;
    } else {
      // Private range for zone 3.
      EXPECT_GE(cmd.key, 3'000'000);
      EXPECT_LT(cmd.key, 3'000'000 + spec.keys);
    }
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.4, 0.02);
}

TEST(WorkloadTest, ConflictZeroNeverHitsHotKey) {
  auto spec = ConflictWorkload(0.0, 3);
  WorkloadGenerator gen(spec, 2, 1, 8);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(gen.Next(0).key, spec.conflict_key);
  }
}

TEST(WorkloadTest, LocalityModeSeparatesZones) {
  auto spec = LocalityWorkload(/*zones=*/5, /*keys=*/1000, /*sigma=*/40.0);
  RunningStats means[5];
  for (int z = 1; z <= 5; ++z) {
    WorkloadGenerator gen(spec, z, 1, 9);
    for (int i = 0; i < 5000; ++i) {
      means[z - 1].Add(static_cast<double>(gen.Next(0).key));
    }
  }
  // Zone centers at (z - 0.5) * K/Z = 100, 300, 500, 700, 900.
  for (int z = 0; z < 5; ++z) {
    EXPECT_NEAR(means[z].mean(), 100.0 + 200.0 * z, 15.0);
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadGenerator a(UniformWorkload(100, 0.5), 1, 1, 5);
  WorkloadGenerator b(UniformWorkload(100, 0.5), 1, 1, 5);
  for (int i = 0; i < 200; ++i) {
    const Command ca = a.Next(0);
    const Command cb = b.Next(0);
    EXPECT_EQ(ca.key, cb.key);
    EXPECT_EQ(ca.op, cb.op);
  }
}

}  // namespace
}  // namespace paxi
