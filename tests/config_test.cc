#include "core/cluster.h"
#include "core/config.h"
#include "gtest/gtest.h"

namespace paxi {
namespace {

TEST(ConfigTest, Defaults) {
  Config cfg;
  EXPECT_EQ(cfg.num_nodes(), 9);
  EXPECT_EQ(cfg.protocol, "paxos");
  EXPECT_EQ(cfg.proc_in_us, 9);
  EXPECT_EQ(cfg.proc_out_us, 15);
}

TEST(ConfigTest, NodesEnumeration) {
  Config cfg;
  cfg.zones = 2;
  cfg.nodes_per_zone = 3;
  const auto nodes = cfg.Nodes();
  ASSERT_EQ(nodes.size(), 6u);
  EXPECT_EQ(nodes.front(), (NodeId{1, 1}));
  EXPECT_EQ(nodes.back(), (NodeId{2, 3}));
  EXPECT_EQ(cfg.NodesIn(2), (std::vector<NodeId>{{2, 1}, {2, 2}, {2, 3}}));
}

TEST(ConfigTest, ParamAccessors) {
  Config cfg;
  cfg.params = {{"q2", "3"}, {"penalty", "1.5"}, {"thrifty", "true"},
                {"leader", "2.1"}};
  EXPECT_EQ(cfg.GetParamInt("q2", 0), 3);
  EXPECT_DOUBLE_EQ(cfg.GetParamDouble("penalty", 0), 1.5);
  EXPECT_TRUE(cfg.GetParamBool("thrifty", false));
  EXPECT_EQ(cfg.GetParam("leader", ""), "2.1");
  EXPECT_EQ(cfg.GetParamInt("missing", 42), 42);
  EXPECT_FALSE(cfg.GetParamBool("missing", false));
}

TEST(ConfigTest, CannedDeployments) {
  const Config lan = Config::Lan9("epaxos");
  EXPECT_EQ(lan.num_nodes(), 9);
  EXPECT_EQ(lan.protocol, "epaxos");
  EXPECT_FALSE(lan.topology.is_wan());

  const Config grid = Config::LanGrid3x3("wpaxos");
  EXPECT_EQ(grid.zones, 3);
  EXPECT_EQ(grid.nodes_per_zone, 3);
  EXPECT_FALSE(grid.topology.is_wan());

  const Config wan = Config::Wan5("wpaxos", 3);
  EXPECT_EQ(wan.zones, 5);
  EXPECT_EQ(wan.num_nodes(), 15);
  EXPECT_TRUE(wan.topology.is_wan());
}

TEST(ConfigTest, ParseValidText) {
  const auto r = Config::FromString(R"(
# A 5-region WPaxos deployment
zones = 5
nodes_per_zone = 3
topology = wan5
protocol = wpaxos
seed = 77
proc_in_us = 12
param.fz = 1
param.initial_owner = 2.1
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Config& cfg = r.value();
  EXPECT_EQ(cfg.zones, 5);
  EXPECT_EQ(cfg.protocol, "wpaxos");
  EXPECT_TRUE(cfg.topology.is_wan());
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.proc_in_us, 12);
  EXPECT_EQ(cfg.GetParamInt("fz", 0), 1);
  EXPECT_EQ(cfg.GetParam("initial_owner", ""), "2.1");
}

TEST(ConfigTest, ParseRejectsGarbage) {
  EXPECT_TRUE(Config::FromString("zones").status().IsInvalidArgument());
  EXPECT_TRUE(Config::FromString("bogus_key = 1").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Config::FromString("topology = mars").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Config::FromString("zones = 0").status().IsInvalidArgument());
  // wan5 requires exactly 5 zones.
  EXPECT_TRUE(
      Config::FromString("zones = 3\ntopology = wan5").status()
          .IsInvalidArgument());
}

TEST(ConfigTest, ParseIgnoresCommentsAndBlanks) {
  const auto r = Config::FromString("\n# comment only\n\nzones = 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().zones, 2);
}

TEST(ConfigTest, FromFileMissing) {
  EXPECT_TRUE(
      Config::FromFile("/nonexistent/paxi.conf").status().IsNotFound());
}

TEST(ClusterHelpersTest, ParseNodeId) {
  EXPECT_EQ(ParseNodeId("2.3"), (NodeId{2, 3}));
  EXPECT_FALSE(ParseNodeId("garbage").valid());
  EXPECT_FALSE(ParseNodeId("0.1").valid());
  EXPECT_FALSE(ParseNodeId("1").valid());
}

TEST(ClusterTest, RegisteredProtocols) {
  const auto names = RegisteredProtocols();
  for (const char* expected :
       {"paxos", "fpaxos", "raft", "mencius", "epaxos", "wpaxos",
        "wankeeper", "vpaxos"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ClusterTest, TargetSelectionByTraits) {
  {
    Cluster cluster(Config::Lan9("paxos"));
    EXPECT_EQ(cluster.TargetFor(1), (NodeId{1, 1}));
    EXPECT_EQ(cluster.TargetForClient(1, 5), (NodeId{1, 1}));
  }
  {
    Config cfg = Config::Lan9("paxos");
    cfg.params["leader"] = "1.4";
    Cluster cluster(cfg);
    EXPECT_EQ(cluster.leader(), (NodeId{1, 4}));
    EXPECT_EQ(cluster.TargetForClient(1, 2), (NodeId{1, 4}));
  }
  {
    Cluster cluster(Config::Lan9("epaxos"));
    // Leaderless: clients spread over the zone's replicas.
    EXPECT_EQ(cluster.TargetForClient(1, 0), (NodeId{1, 1}));
    EXPECT_EQ(cluster.TargetForClient(1, 1), (NodeId{1, 2}));
    EXPECT_EQ(cluster.TargetForClient(1, 9), (NodeId{1, 1}));
  }
  {
    Cluster cluster(Config::Wan5("wpaxos"));
    // Multi-leader: the zone leader.
    EXPECT_EQ(cluster.TargetForClient(3, 7), (NodeId{3, 1}));
  }
}

TEST(ClusterTest, NodeLookup) {
  Cluster cluster(Config::LanGrid3x3("wpaxos"));
  EXPECT_NE(cluster.node({2, 2}), nullptr);
  EXPECT_EQ(cluster.node({9, 9}), nullptr);
  EXPECT_EQ(cluster.nodes().size(), 9u);
}

}  // namespace
}  // namespace paxi
