#include "sim/auditor.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/config.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace paxi {
namespace {

// --- Determinism auditing --------------------------------------------------

// A well-behaved scenario: everything derives from the simulator's seeded
// RNG, so two runs must produce identical fingerprint traces.
void DeterministicScenario(TraceRecorder& rec) {
  Simulator sim(/*seed=*/42);
  sim.AddObserver(&rec);
  for (int i = 0; i < 50; ++i) {
    sim.After(sim.rng().UniformInt(1, 1000), [&sim]() {
      if (sim.rng().Bernoulli(0.3)) {
        sim.After(5, []() {});
      }
    });
  }
  sim.RunToCompletion();
}

TEST(DeterminismAuditTest, SameSeedReplayProducesIdenticalTraces) {
  const ReplayReport report = AuditReplay(DeterministicScenario);
  EXPECT_TRUE(report.deterministic) << report.detail;
  EXPECT_GT(report.events_a, 0u);
  EXPECT_EQ(report.events_a, report.events_b);
}

TEST(DeterminismAuditTest, FullClusterReplayIsDeterministic) {
  const ReplayReport report = AuditReplay([](TraceRecorder& rec) {
    Config config = Config::Lan9("paxos");
    Cluster cluster(config);
    cluster.sim().AddObserver(&rec);
    cluster.Start();
    Client* client = cluster.NewClient(1);
    for (RequestId r = 1; r <= 20; ++r) {
      client->Put(static_cast<Key>(r), "v" + std::to_string(r), cluster.TargetFor(1),
                  [](const Client::Reply&) {});
    }
    cluster.RunFor(2 * kSecond);
  });
  EXPECT_TRUE(report.deterministic) << report.detail;
  EXPECT_GT(report.events_a, 0u);
}

// An injected unordered-map iteration-order dependency. Real-world
// versions of this bug hinge on address- or seed-randomized hashing
// (pointer-keyed maps, abseil-style per-process hash salts) making
// iteration order differ run to run. The salt here comes from a
// file-static run counter so the divergence is reproducible on every
// allocator/build; the bug under test — scheduling order taken from
// unordered-container iteration — is the same.
int g_run_counter = 0;

struct SaltedHash {
  std::size_t salt;
  std::size_t operator()(int key) const {
    std::size_t h = salt ^ static_cast<std::size_t>(key);
    h *= 0x9E3779B97F4A7C15ULL;  // Fibonacci hashing mix
    return h ^ (h >> 29);
  }
};

void UnorderedMapScenario(TraceRecorder& rec) {
  Simulator sim(/*seed=*/7);
  sim.AddObserver(&rec);

  std::unordered_map<int, Time, SaltedHash> delays(
      /*bucket_count=*/8, SaltedHash{static_cast<std::size_t>(g_run_counter)});
  ++g_run_counter;
  for (int i = 0; i < 32; ++i) {
    delays[i] = 10 * (i + 1);
  }
  // BUG under test: iteration order of a hash-salted unordered_map
  // decides the RNG call sequence.
  for (const auto& [key, delay] : delays) {
    sim.After(delay + sim.rng().UniformInt(0, 5), [&sim]() {
      (void)sim.rng().Next();
    });
  }
  sim.RunToCompletion();
}

TEST(DeterminismAuditTest, DetectsUnorderedMapIterationDependency) {
  const ReplayReport report = AuditReplay(UnorderedMapScenario);
  // The fingerprints (event times and RNG draw counts) depend on the
  // map's iteration order, which differs between the two runs.
  EXPECT_FALSE(report.deterministic);
  EXPECT_FALSE(report.detail.empty());
}

// Cross-run static state (the moral equivalent of a stray global RNG or a
// wall-clock read): the second run schedules one extra event.
int g_sneaky_state = 0;

TEST(DeterminismAuditTest, DetectsStateLeakingAcrossRuns) {
  const ReplayReport report = AuditReplay([](TraceRecorder& rec) {
    Simulator sim(/*seed=*/3);
    sim.AddObserver(&rec);
    sim.After(10, []() {});
    if (g_sneaky_state++ > 0) sim.After(20, []() {});
    sim.RunToCompletion();
  });
  EXPECT_FALSE(report.deterministic);
  EXPECT_NE(report.events_a, report.events_b);
}

TEST(DeterminismAuditTest, CompareTracesPinpointsFirstDivergence) {
  TraceRecorder a;
  TraceRecorder b;
  a.OnEventExecuted(EventFingerprint{0, 10, 1});
  b.OnEventExecuted(EventFingerprint{0, 10, 1});
  a.OnEventExecuted(EventFingerprint{1, 20, 2});
  b.OnEventExecuted(EventFingerprint{1, 25, 2});  // diverges here
  const ReplayReport report = CompareTraces(a, b);
  ASSERT_FALSE(report.deterministic);
  EXPECT_EQ(report.first_divergence, 1u);
  EXPECT_NE(report.detail.find("vtime=20"), std::string::npos);
  EXPECT_NE(report.detail.find("vtime=25"), std::string::npos);
}

TEST(DeterminismAuditTest, RngDrawCountIsFingerprinted) {
  Rng rng(1);
  EXPECT_EQ(rng.draw_count(), 0u);
  (void)rng.Next();
  (void)rng.NextDouble();
  (void)rng.UniformInt(0, 9);
  EXPECT_EQ(rng.draw_count(), 3u);
}

// --- Invariant auditing ----------------------------------------------------

// A minimal auditable node for injecting invariant violations.
class FakeReplica : public Auditable {
 public:
  explicit FakeReplica(NodeId id) : id_(id) {}

  NodeId id() const override { return id_; }

  void Audit(AuditScope& scope) const override {
    if (ballot_.valid()) scope.BallotIs("log", ballot_);
    for (const auto& [slot, digest] : chosen_) {
      scope.Chosen("log", slot, digest);
    }
  }

  void SetBallot(Ballot b) { ballot_ = b; }
  void Choose(Slot slot, std::uint64_t digest) { chosen_[slot] = digest; }

 private:
  NodeId id_;
  Ballot ballot_;
  std::map<Slot, std::uint64_t> chosen_;
};

TEST(InvariantAuditTest, BallotRegressionTripsTheHook) {
  InvariantAuditor auditor(/*fail_fast=*/false);
  FakeReplica node(NodeId{1, 1});
  auditor.Watch(&node);

  node.SetBallot(Ballot{5, NodeId{1, 1}});
  auditor.AuditNow();
  EXPECT_TRUE(auditor.violations().empty());

  node.SetBallot(Ballot{7, NodeId{1, 2}});  // monotone: fine
  auditor.AuditNow();
  EXPECT_TRUE(auditor.violations().empty());

  node.SetBallot(Ballot{3, NodeId{1, 1}});  // regression: must trip
  auditor.AuditNow();
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_NE(auditor.violations()[0].find("ballot regression"),
            std::string::npos);
}

TEST(InvariantAuditTest, DivergentChosenValueTripsTheHook) {
  InvariantAuditor auditor(/*fail_fast=*/false);
  FakeReplica a(NodeId{1, 1});
  FakeReplica b(NodeId{1, 2});
  auditor.Watch(&a);
  auditor.Watch(&b);

  Command cmd1;
  cmd1.op = Command::Op::kPut;
  cmd1.key = 9;
  cmd1.value = "x";
  Command cmd2 = cmd1;
  cmd2.value = "y";

  a.Choose(0, DigestCommand(cmd1));
  b.Choose(0, DigestCommand(cmd1));
  auditor.AuditNow();
  EXPECT_TRUE(auditor.violations().empty());

  // Node b now claims a *different* value was chosen in slot 1.
  a.Choose(1, DigestCommand(cmd1));
  b.Choose(1, DigestCommand(cmd2));
  auditor.AuditNow();
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_NE(auditor.violations()[0].find("agreement violation"),
            std::string::npos);
}

TEST(InvariantAuditTest, QuorumIntersectionHelpers) {
  // Majority quorums over 9 nodes intersect; disjoint split does not.
  EXPECT_TRUE(InvariantAuditor::CountQuorumsIntersect(9, 5, 5));
  EXPECT_TRUE(InvariantAuditor::CountQuorumsIntersect(9, 7, 3));  // FPaxos
  EXPECT_FALSE(InvariantAuditor::CountQuorumsIntersect(9, 4, 5));
  EXPECT_FALSE(InvariantAuditor::CountQuorumsIntersect(9, 0, 9));
  // WPaxos grid: (Z - fz) + (fz + 1) = Z + 1 > Z always intersects.
  EXPECT_TRUE(InvariantAuditor::GridQuorumsIntersect(5, 4, 2));
  EXPECT_FALSE(InvariantAuditor::GridQuorumsIntersect(5, 2, 2));
}

TEST(InvariantAuditTest, FailFastAbortsOnViolation) {
  ASSERT_DEATH(
      {
        InvariantAuditor auditor(/*fail_fast=*/true);
        FakeReplica node(NodeId{1, 1});
        auditor.Watch(&node);
        node.SetBallot(Ballot{5, NodeId{1, 1}});
        auditor.AuditNow();
        node.SetBallot(Ballot{1, NodeId{1, 1}});
        auditor.AuditNow();
      },
      "ballot regression");
}

// End-to-end: a real cluster run under the auditor reports no violations
// (and the audit actually ran).
TEST(InvariantAuditTest, CleanPaxosRunHasNoViolations) {
  Config config = Config::Lan9("paxos");
  Cluster cluster(config);
  InvariantAuditor auditor(/*fail_fast=*/false);
  cluster.sim().AddObserver(&auditor);
  for (const NodeId& id : cluster.nodes()) {
    auditor.Watch(cluster.node(id));
  }
  cluster.Start();
  Client* client = cluster.NewClient(1);
  for (RequestId r = 1; r <= 30; ++r) {
    client->Put(static_cast<Key>(r % 5), "v" + std::to_string(r), cluster.TargetFor(1),
                [](const Client::Reply&) {});
  }
  cluster.RunFor(2 * kSecond);
  EXPECT_TRUE(auditor.violations().empty())
      << auditor.violations().front();
  EXPECT_GT(auditor.events_audited(), 0u);
}

}  // namespace
}  // namespace paxi
