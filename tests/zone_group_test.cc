// Tests for the per-zone Paxos-group machinery shared by the hierarchical
// protocols (WanKeeper, VPaxos).

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "net/latency.h"
#include "protocols/common/zone_group.h"

namespace paxi {
namespace {

/// Minimal concrete group member exposing GroupSubmit for tests.
class GroupNode : public ZoneGroupNode {
 public:
  GroupNode(NodeId id, Env env) : ZoneGroupNode(id, env) {}

  void Submit(Command cmd, std::function<void(Result<Value>)> done) {
    GroupSubmit(std::move(cmd), std::move(done));
  }
};

class ZoneGroupTest : public ::testing::Test {
 protected:
  ZoneGroupTest() {
    config_.zones = 1;
    config_.nodes_per_zone = 3;
    sim_ = std::make_unique<Simulator>(1);
    transport_ = std::make_unique<Transport>(
        sim_.get(), std::make_shared<TopologyLatencyModel>(Topology::Lan(1)),
        true);
    Node::Env env{sim_.get(), transport_.get(), &config_};
    for (int i = 1; i <= 3; ++i) {
      nodes_.push_back(std::make_unique<GroupNode>(NodeId{1, i}, env));
      transport_->Register(nodes_.back().get());
    }
    for (auto& n : nodes_) n->Start();
  }

  Command Put(Key key, const Value& value, RequestId rid) {
    Command cmd;
    cmd.op = Command::Op::kPut;
    cmd.key = key;
    cmd.value = value;
    cmd.client = 1;
    cmd.request = rid;
    return cmd;
  }

  Config config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<GroupNode>> nodes_;
};

TEST_F(ZoneGroupTest, LeaderCommitsWithZoneMajority) {
  bool done = false;
  nodes_[0]->Submit(Put(1, "v", 1), [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "v");
    done = true;
  });
  sim_->RunUntil(kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(nodes_[0]->store().Get(1).value(), "v");
}

TEST_F(ZoneGroupTest, CallbacksFireInSubmissionOrder) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    nodes_[0]->Submit(Put(i, "x", i + 1),
                      [&order, i](Result<Value>) { order.push_back(i); });
  }
  sim_->RunUntil(kSecond);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(ZoneGroupTest, FollowersCatchUpViaFlush) {
  for (int i = 0; i < 4; ++i) {
    nodes_[0]->Submit(Put(i, "f" + std::to_string(i), i + 1), nullptr);
  }
  // Group flush timers run every 100 ms; give them a couple of rounds.
  sim_->RunUntil(2 * kSecond);
  for (auto& n : nodes_) {
    EXPECT_GE(n->group_committed(), 3) << n->id().ToString();
    EXPECT_EQ(n->store().Get(2).value(), "f2") << n->id().ToString();
  }
}

TEST_F(ZoneGroupTest, SurvivesOneFollowerDown) {
  nodes_[2]->Crash(30 * kSecond);
  bool done = false;
  nodes_[0]->Submit(Put(9, "maj", 1), [&](Result<Value>) { done = true; });
  sim_->RunUntil(kSecond);
  EXPECT_TRUE(done);  // 2-of-3 majority includes the leader
}

TEST_F(ZoneGroupTest, StallsWithoutMajority) {
  nodes_[1]->Crash(30 * kSecond);
  nodes_[2]->Crash(30 * kSecond);
  bool done = false;
  nodes_[0]->Submit(Put(9, "solo", 1), [&](Result<Value>) { done = true; });
  sim_->RunUntil(5 * kSecond);
  EXPECT_FALSE(done);
}

TEST_F(ZoneGroupTest, ReadBarrierSeesPriorWrites) {
  // A GET submitted after a burst of PUTs executes after all of them —
  // the barrier the hierarchical protocols use before moving state.
  for (int i = 0; i < 3; ++i) {
    nodes_[0]->Submit(Put(5, "w" + std::to_string(i), i + 1), nullptr);
  }
  Command barrier;
  barrier.op = Command::Op::kGet;
  barrier.key = 5;
  Value seen;
  nodes_[0]->Submit(barrier, [&](Result<Value> r) {
    ASSERT_TRUE(r.ok());
    seen = r.value();
  });
  sim_->RunUntil(kSecond);
  EXPECT_EQ(seen, "w2");
}

TEST(ZoneGroupSoloTest, SingleNodeGroupCommitsInstantly) {
  Config config;
  config.zones = 1;
  config.nodes_per_zone = 1;
  Simulator sim(1);
  Transport transport(&sim,
                      std::make_shared<TopologyLatencyModel>(Topology::Lan(1)),
                      true);
  Node::Env env{&sim, &transport, &config};
  GroupNode solo(NodeId{1, 1}, env);
  transport.Register(&solo);
  solo.Start();

  bool done = false;
  Command cmd;
  cmd.op = Command::Op::kPut;
  cmd.key = 1;
  cmd.value = "alone";
  cmd.client = 1;
  cmd.request = 1;
  sim.After(0, [&] { solo.Submit(cmd, [&](Result<Value>) { done = true; }); });
  sim.RunUntil(kMillisecond);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace paxi
