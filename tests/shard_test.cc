// Sharded multi-group consensus tests (src/shard + net/relay): shard-map
// placement and fencing, the client router's stale-view/redirect
// semantics, relay-tree planning, and end-to-end sharded clusters —
// routing across groups, fenced key migration (with stale clients and
// racing requests), and relay-tree dissemination — all under the
// linearizability checker and the runtime invariant auditor.

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "common/digest.h"
#include "gtest/gtest.h"
#include "net/relay.h"
#include "shard/coordinator.h"
#include "shard/router.h"
#include "shard/shard_map.h"
#include "test_util.h"

namespace paxi {
namespace {

/// Enables the runtime invariant auditor (PAXI_AUDIT=1) for one test:
/// per-group agreement/ballot invariants self-check after every event.
class ScopedAudit {
 public:
  ScopedAudit() { setenv("PAXI_AUDIT", "1", 1); }
  ~ScopedAudit() { unsetenv("PAXI_AUDIT"); }
};

Config ShardedLan(int groups, int nodes_per_group = 3) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = nodes_per_group;
  cfg.params["groups"] = std::to_string(groups);
  return cfg;
}

/// First key in [0, limit) whose base placement is `group`.
Key KeyInGroup(int group, int num_groups, Key limit = 1000) {
  for (Key k = 0; k < limit; ++k) {
    if (ShardMap::BaseGroupOf(k, num_groups) == group) return k;
  }
  ADD_FAILURE() << "no key hashed into group " << group;
  return 0;
}

// ---------------------------------------------------------------------------
// ShardMap: placement, overrides, fencing.
// ---------------------------------------------------------------------------

TEST(ShardMapTest, BasePlacementIsDeterministicInRangeAndSpread) {
  std::set<int> seen;
  for (Key k = 0; k < 200; ++k) {
    const int g = ShardMap::BaseGroupOf(k, 4);
    EXPECT_GE(g, 1);
    EXPECT_LE(g, 4);
    EXPECT_EQ(g, ShardMap::BaseGroupOf(k, 4));  // pure function of the key
    seen.insert(g);
  }
  // The hash must actually spread keys: all four groups get some.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardMapTest, OverridesBumpEpochAndWinOverBasePlacement) {
  ShardMap map(4);
  const Key key = KeyInGroup(2, 4);
  EXPECT_EQ(map.GroupOf(key), 2);
  EXPECT_EQ(map.epoch(), 0u);

  const std::uint64_t before = map.StateDigest();
  map.SetOverride(key, 3);
  EXPECT_EQ(map.GroupOf(key), 3);
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_NE(map.StateDigest(), before);

  // Other keys keep their base placement.
  const Key other = KeyInGroup(1, 4);
  EXPECT_EQ(map.GroupOf(other), 1);
}

TEST(ShardMapTest, FenceIsExplicitAndDoesNotMovePlacement) {
  ShardMap map(2);
  const Key key = KeyInGroup(1, 2);
  EXPECT_FALSE(map.IsFenced(key));
  map.Fence(key);
  EXPECT_TRUE(map.IsFenced(key));
  EXPECT_EQ(map.GroupOf(key), 1);  // fencing blocks admission, not routing
  map.Unfence(key);
  EXPECT_FALSE(map.IsFenced(key));
}

// ---------------------------------------------------------------------------
// ShardRouterView: the client's stale-able directory.
// ---------------------------------------------------------------------------

std::vector<GroupInfo> TwoGroups() {
  std::vector<GroupInfo> infos;
  for (int g = 1; g <= 2; ++g) {
    GroupInfo info;
    info.group = g;
    for (std::int32_t i = 1; i <= 3; ++i) {
      info.nodes.push_back(NodeId{1, (g - 1) * 3 + i});
    }
    info.leader = info.nodes.front();
    infos.push_back(info);
  }
  return infos;
}

TEST(ShardRouterViewTest, TargetsStayInsideTheBelievedGroup) {
  ShardRouterView view(TwoGroups(), /*single_leader=*/true, /*client_zone=*/1);
  const Key key = KeyInGroup(2, 2);
  EXPECT_EQ(view.GroupOf(key), 2);
  EXPECT_EQ(view.TargetFor(key), (NodeId{1, 4}));  // group 2's leader

  // Retry fallback cycles within group 2 and never leaves it.
  NodeId t = view.TargetFor(key);
  std::set<NodeId> visited;
  for (int i = 0; i < 6; ++i) {
    t = view.NextInGroup(key, t);
    visited.insert(t);
    EXPECT_GE(t.node, 4);
    EXPECT_LE(t.node, 6);
  }
  EXPECT_EQ(visited.size(), 3u);  // all three replicas were tried
}

TEST(ShardRouterViewTest, RedirectEpochsTerminateLoops) {
  ShardRouterView view(TwoGroups(), true, 1);
  const Key key = KeyInGroup(1, 2);

  // A newer-epoch redirect teaches the view.
  EXPECT_TRUE(view.ObserveRedirect(key, 2, 1));
  EXPECT_EQ(view.GroupOf(key), 2);
  EXPECT_EQ(view.epoch(), 1u);

  // Replaying the same redirect teaches nothing (no flip-flop fuel)...
  EXPECT_FALSE(view.ObserveRedirect(key, 2, 1));
  // ...and a stale (older-epoch) redirect is rejected outright: a replica
  // still routing on the pre-migration map cannot drag the client back.
  EXPECT_FALSE(view.ObserveRedirect(key, 1, 0));
  EXPECT_EQ(view.GroupOf(key), 2);

  // Same-epoch redirect for a *different* key is real information — two
  // migrations can share an epoch value in a freshly seeded view.
  const Key other = KeyInGroup(2, 2);
  EXPECT_TRUE(view.ObserveRedirect(other, 1, 1));
  EXPECT_EQ(view.GroupOf(other), 1);

  // Garbage group ids never crash the view.
  EXPECT_FALSE(view.ObserveRedirect(key, 0, 9));
  EXPECT_FALSE(view.ObserveRedirect(key, 7, 9));
}

// ---------------------------------------------------------------------------
// RelayPolicy: deterministic tree planning.
// ---------------------------------------------------------------------------

TEST(RelayPolicyTest, PlanPartitionsTargetsExactlyAndRotates) {
  RelayPolicy policy(/*fanout=*/3, /*ack_wait_us=*/1000);
  std::vector<NodeId> targets;
  for (std::int32_t i = 2; i <= 9; ++i) targets.push_back(NodeId{1, i});

  EXPECT_FALSE(policy.Engaged(3));  // R+1 targets: envelopes are pure cost
  EXPECT_TRUE(policy.Engaged(targets.size()));

  const std::vector<RelayTree> trees = policy.Plan(targets, /*rotation=*/0);
  ASSERT_EQ(trees.size(), 3u);
  std::set<NodeId> covered;
  for (const RelayTree& tree : trees) {
    EXPECT_TRUE(covered.insert(tree.relay).second);
    for (const NodeId& m : tree.members) {
      EXPECT_TRUE(covered.insert(m).second);  // no duplicates across trees
    }
  }
  // Every target appears exactly once, as a relay or a member.
  EXPECT_EQ(covered, std::set<NodeId>(targets.begin(), targets.end()));

  // Rotation picks a different relay set, so a crashed relay is not
  // re-elected by the retransmission (and relay duty spreads out).
  std::set<NodeId> relays0, relays1;
  for (const RelayTree& t : trees) relays0.insert(t.relay);
  for (const RelayTree& t : policy.Plan(targets, 1)) relays1.insert(t.relay);
  EXPECT_NE(relays0, relays1);

  // Pure function: same inputs, same plan.
  const std::vector<RelayTree> again = policy.Plan(targets, 0);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_EQ(trees[i].relay, again[i].relay);
    EXPECT_EQ(trees[i].members, again[i].members);
  }
}

// ---------------------------------------------------------------------------
// Sharded cluster end-to-end.
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, CoordinatorCarvesDisjointGroups) {
  Config cfg = ShardedLan(/*groups=*/3, /*nodes_per_group=*/3);
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.sharded());
  ShardCoordinator* coord = cluster.coordinator();
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->num_groups(), 3);

  std::set<NodeId> all;
  for (int g = 1; g <= 3; ++g) {
    const Config& gc = coord->GroupConfig(g);
    const std::vector<NodeId> nodes = gc.Nodes();
    ASSERT_EQ(nodes.size(), 3u);
    for (const NodeId& id : nodes) {
      EXPECT_TRUE(all.insert(id).second)
          << "groups share replica " << id.zone << "." << id.node;
      EXPECT_EQ(coord->GroupOfNode(id), g);
      EXPECT_EQ(&coord->ConfigFor(id), &gc);
    }
  }
  EXPECT_EQ(all.size(), 9u);  // 3 groups x 3 replicas, disjoint id ranges
}

TEST(ShardedClusterTest, RoutesAcrossGroupsAndStaysLinearizable) {
  ScopedAudit audit;
  Config cfg = ShardedLan(/*groups=*/2);
  Cluster cluster(cfg);

  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/50, /*write_ratio=*/0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 2.0;
  options.record_ops = true;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 500u);
  EXPECT_EQ(result.errors, 0u);

  // Both groups actually served traffic (keys hash across them).
  for (int g = 1; g <= 2; ++g) {
    const NodeId leader = cluster.coordinator()->GroupInfos()[
        static_cast<std::size_t>(g - 1)].leader;
    EXPECT_GT(result.node_messages.at(leader), 100u)
        << "group " << g << " leader saw no traffic";
  }

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

TEST(ShardedClusterTest, MigrationMovesKeyAndTeachesStaleClients) {
  ScopedAudit audit;
  Config cfg = ShardedLan(/*groups=*/2);
  Cluster cluster(cfg);
  Bootstrap(cluster);

  const Key key = KeyInGroup(1, 2);
  Client* writer = cluster.NewClient(1);
  const NodeId any = cluster.nodes().front();
  ASSERT_TRUE(PutAndWait(cluster, writer, key, "v41", any).status.ok());
  ASSERT_TRUE(PutAndWait(cluster, writer, key, "v42", any).status.ok());

  const std::uint64_t epoch_before = cluster.coordinator()->map().epoch();
  ASSERT_TRUE(cluster.MigrateKey(key, 2));
  EXPECT_FALSE(cluster.MigrateKey(key, 2));  // already mid-handoff
  cluster.RunFor(2 * kSecond);

  const ShardCoordinator& coord = *cluster.coordinator();
  EXPECT_FALSE(coord.MigrationActive(key));
  EXPECT_EQ(coord.stats().completed, 1u);
  EXPECT_EQ(coord.stats().aborted, 0u);
  EXPECT_EQ(coord.map().GroupOf(key), 2);
  EXPECT_FALSE(coord.map().IsFenced(key));
  EXPECT_GT(coord.map().epoch(), epoch_before);

  // A fresh client starts from the base placement (stale view), aims at
  // group 1, is redirected, and still reads the migrated value.
  Client* stale = cluster.NewClient(1);
  ASSERT_EQ(stale->router()->GroupOf(key), 1);
  const Client::Reply read = GetAndWait(cluster, stale, key, any);
  ASSERT_TRUE(read.status.ok()) << read.status.ToString();
  EXPECT_TRUE(read.found);
  EXPECT_EQ(read.value, "v42");
  EXPECT_EQ(stale->router()->GroupOf(key), 2);  // the redirect taught it

  // Migrating a key nobody ever wrote is a pure map flip.
  const Key untouched = KeyInGroup(1, 2, /*limit=*/1000) + 500;
  const int from = coord.map().GroupOf(untouched);
  const int to = from == 1 ? 2 : 1;
  ASSERT_TRUE(cluster.MigrateKey(untouched, to));
  cluster.RunFor(3 * kSecond);
  EXPECT_EQ(coord.map().GroupOf(untouched), to);
  EXPECT_EQ(coord.stats().empty_handoffs, 1u);
}

TEST(ShardedClusterTest, ClientRetriesThroughAMigrationMidRequest) {
  ScopedAudit audit;
  Config cfg = ShardedLan(/*groups=*/2);
  Cluster cluster(cfg);
  Bootstrap(cluster);

  const Key key = KeyInGroup(1, 2);
  Client* client = cluster.NewClient(1);
  const NodeId any = cluster.nodes().front();
  ASSERT_TRUE(PutAndWait(cluster, client, key, "v1", any).status.ok());

  // Open the handoff window, then immediately issue a write for the key:
  // it hits the fence, is rejected without a hint, backs off, and must
  // land — on the destination group — once the fence lifts.
  ASSERT_TRUE(cluster.MigrateKey(key, 2));
  ASSERT_TRUE(cluster.coordinator()->MigrationActive(key));
  const Client::Reply reply = PutAndWait(cluster, client, key, "v7", any);
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_GT(reply.attempts, 1);  // the fence made it retry

  cluster.RunFor(kSecond);
  EXPECT_FALSE(cluster.coordinator()->MigrationActive(key));
  EXPECT_EQ(cluster.coordinator()->map().GroupOf(key), 2);

  // The racing write is the key's final state, visible to a fresh view.
  Client* reader = cluster.NewClient(1);
  const Client::Reply read = GetAndWait(cluster, reader, key, any);
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(read.value, "v7");
}

TEST(RelayClusterTest, RelayedBroadcastCommitsAndStaysLinearizable) {
  ScopedAudit audit;
  Config cfg = Config::Lan9("paxos");
  cfg.params["relay_fanout"] = "3";
  Cluster cluster(cfg);

  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/50, /*write_ratio=*/0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 2.0;
  options.record_ops = true;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 500u);
  EXPECT_EQ(result.errors, 0u);

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

TEST(ShardedClusterTest, SameSeedShardedRunsAreByteIdentical) {
  // Determinism gate for the new layer: two sharded+relayed universes from
  // the same seed must agree on every digest the replay harness compares.
  auto digest_of = [] {
    Config cfg = ShardedLan(/*groups=*/2);
    cfg.params["relay_fanout"] = "0";
    cfg.seed = 77;
    Cluster cluster(cfg);
    BenchOptions options;
    options.workload = UniformWorkload(25, 0.5);
    options.clients_per_zone = 2;
    options.bootstrap_s = 0.5;
    options.warmup_s = 0.0;
    options.duration_s = 1.0;
    BenchRunner runner(&cluster, options);
    const BenchResult result = runner.Run();
    Digest d;
    d.Mix(result.completed).Mix(result.events);
    d.Mix(cluster.coordinator()->StateDigest());
    for (const NodeId& id : cluster.nodes()) {
      d.Mix(cluster.node(id)->StateDigest());
    }
    return d.value();
  };
  EXPECT_EQ(digest_of(), digest_of());
}

}  // namespace
}  // namespace paxi
