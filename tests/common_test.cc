#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/live_flag.h"
#include "common/rng.h"
#include "common/small_vec.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "gtest/gtest.h"

namespace paxi {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  const Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal().IsInternal());
}

TEST(StatusTest, EqualityComparesCode) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::TimedOut());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// --- Types -------------------------------------------------------------------

TEST(TypesTest, NodeIdOrderingAndFormat) {
  const NodeId a{1, 2};
  const NodeId b{2, 1};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.ToString(), "1.2");
  EXPECT_FALSE(NodeId::Invalid().valid());
  EXPECT_TRUE(a.valid());
}

TEST(TypesTest, BallotOrdering) {
  const NodeId n1{1, 1};
  const NodeId n2{1, 2};
  const Ballot b1{1, n1};
  const Ballot b2{1, n2};
  const Ballot b3{2, n1};
  EXPECT_LT(b1, b2);  // same counter: node id breaks the tie
  EXPECT_LT(b2, b3);  // higher counter wins
  EXPECT_EQ(b1.Next(n2), (Ballot{2, n2}));
  EXPECT_FALSE(Ballot().valid());
  EXPECT_TRUE(b1.valid());
}

TEST(TypesTest, TimeConversions) {
  EXPECT_EQ(FromMillis(1.5), 1500);
  EXPECT_DOUBLE_EQ(ToMillis(2500), 2.5);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(19);
  std::int64_t zero_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.Zipf(1000, 2.0, 1.0);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    if (v == 0) ++zero_count;
  }
  // With s=2 the head item should dominate (> 40% of mass).
  EXPECT_GT(zero_count, n * 2 / 5);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --- Stats -------------------------------------------------------------------

TEST(RunningStatsTest, Moments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv_squared(), 0.0);
}

TEST(SamplerTest, Percentiles) {
  Sampler s;
  for (int i = 100; i >= 1; --i) s.Add(i);  // unsorted insert
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SamplerTest, CdfIsMonotone) {
  Sampler s;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) s.Add(rng.Normal(10, 2));
  const auto cdf = s.Cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SamplerTest, Merge) {
  Sampler a, b;
  a.Add(1);
  b.Add(2);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(HistogramTest, BucketsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.BucketCount(i), 1u);
    EXPECT_NEAR(h.Density(i), 0.1, 1e-12);
    EXPECT_NEAR(h.BucketCenter(i), i + 0.5, 1e-12);
  }
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(9.0);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
}

TEST(HistogramTest, AsciiRendering) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}


// --- SmallVec ----------------------------------------------------------------

TEST(SmallVecTest, StaysInlineUpToCapacity) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.inlined());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVecTest, SpillsToHeapPastCapacityAndKeepsContents) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_FALSE(v.inlined());
  EXPECT_EQ(v.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVecTest, CopyAndMoveBothModes) {
  SmallVec<std::string, 2> inline_v;
  inline_v.push_back("a");
  SmallVec<std::string, 2> spilled;
  for (int i = 0; i < 5; ++i) spilled.push_back(std::to_string(i));

  SmallVec<std::string, 2> ic = inline_v;   // copy inline
  SmallVec<std::string, 2> sc = spilled;    // copy spilled
  EXPECT_EQ(ic, inline_v);
  EXPECT_EQ(sc, spilled);

  SmallVec<std::string, 2> im = std::move(ic);  // move inline
  SmallVec<std::string, 2> sm = std::move(sc);  // move (steals heap buffer)
  EXPECT_EQ(im, inline_v);
  EXPECT_EQ(sm, spilled);
  EXPECT_TRUE(sc.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(SmallVecTest, ConvertsToAndFromStdVector) {
  std::vector<int> source{1, 2, 3, 4, 5, 6};
  SmallVec<int, 4> v;
  v = source;  // vector -> SmallVec (spills: 6 > 4)
  EXPECT_EQ(v.size(), 6u);
  std::vector<int> round_trip = v;  // SmallVec -> vector
  EXPECT_EQ(round_trip, source);
}

TEST(SmallVecTest, ClearDestroysButKeepsCapacity) {
  SmallVec<std::string, 2> v;
  for (int i = 0; i < 8; ++i) v.push_back("x");
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

// --- LiveFlag / LiveRef ------------------------------------------------------

TEST(LiveFlagTest, RefTracksOwnerLifetime) {
  LiveRef ref;
  EXPECT_FALSE(ref);  // default ref is dead
  {
    LiveFlag flag;
    ref = LiveRef(flag);
    EXPECT_TRUE(ref);
  }
  EXPECT_FALSE(ref);  // owner destroyed -> every ref reads dead
}

TEST(LiveFlagTest, KillFlipsWithoutDestruction) {
  LiveFlag flag;
  const LiveRef ref(flag);
  EXPECT_TRUE(ref);
  flag.Kill();
  EXPECT_FALSE(ref);
}

TEST(LiveFlagTest, CopiesAndMovesShareState) {
  LiveFlag flag;
  LiveRef a(flag);
  LiveRef b = a;             // copy
  LiveRef c = std::move(a);  // move
  EXPECT_TRUE(b);
  EXPECT_TRUE(c);
  flag.Kill();
  EXPECT_FALSE(b);
  EXPECT_FALSE(c);
}

}  // namespace
}  // namespace paxi
