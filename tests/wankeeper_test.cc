#include "benchmark/runner.h"
#include "checker/consensus.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "protocols/wankeeper/wankeeper.h"
#include "test_util.h"

namespace paxi {
namespace {

WanKeeperReplica* Replica(Cluster& cluster, NodeId id) {
  auto* r = dynamic_cast<WanKeeperReplica*>(cluster.node(id));
  EXPECT_NE(r, nullptr);
  return r;
}

TEST(WanKeeperTest, MasterServesRequestsAtLevelTwo) {
  Config cfg = Config::LanGrid3x3("wankeeper");  // master zone 1 in LAN
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  auto put = PutAndWait(cluster, client, 1, "master-side", NodeId{1, 1});
  ASSERT_TRUE(put.status.ok());
  auto get = GetAndWait(cluster, client, 1, NodeId{1, 1});
  EXPECT_EQ(get.value, "master-side");
}

TEST(WanKeeperTest, SustainedRemoteDemandEarnsToken) {
  Cluster cluster(Config::LanGrid3x3("wankeeper"));
  Bootstrap(cluster);
  Client* c3 = cluster.NewClient(3);
  for (int i = 0; i < 6; ++i) {
    auto put = PutAndWait(cluster, c3, 7, "z3-" + std::to_string(i),
                          NodeId{3, 1});
    ASSERT_TRUE(put.status.ok()) << i;
  }
  cluster.RunFor(kSecond);
  EXPECT_GE(Replica(cluster, {3, 1})->tokens_held(), 1u);
  EXPECT_GE(Replica(cluster, {1, 1})->grants(), 1u);
  // Token holder now serves without the master: cut master links and go.
  for (const NodeId& a : cluster.nodes()) {
    for (const NodeId& b : cluster.nodes()) {
      if ((a.zone == 1) != (b.zone == 1)) {
        cluster.transport().Drop(a, b, 30 * kSecond);
      }
    }
  }
  auto put = PutAndWait(cluster, c3, 7, "local-now", NodeId{3, 1});
  EXPECT_TRUE(put.status.ok());
}

TEST(WanKeeperTest, ContentionRetractsTokenToMaster) {
  Cluster cluster(Config::LanGrid3x3("wankeeper"));
  Bootstrap(cluster);
  // Zone 3 earns the token...
  Client* c3 = cluster.NewClient(3);
  for (int i = 0; i < 5; ++i) {
    PutAndWait(cluster, c3, 2, "a" + std::to_string(i), NodeId{3, 1});
  }
  cluster.RunFor(kSecond);
  ASSERT_GE(Replica(cluster, {3, 1})->tokens_held(), 1u);
  // ...then zone 2 contends: the master must revoke.
  Client* c2 = cluster.NewClient(2);
  auto put = PutAndWait(cluster, c2, 2, "contender", NodeId{2, 1});
  ASSERT_TRUE(put.status.ok());
  cluster.RunFor(kSecond);
  EXPECT_GE(Replica(cluster, {1, 1})->revokes(), 1u);
  EXPECT_EQ(Replica(cluster, {3, 1})->tokens_held(), 0u);
  // Value continuity across the revoke.
  auto get = GetAndWait(cluster, c2, 2, NodeId{2, 1});
  EXPECT_EQ(get.value, "contender");
}

TEST(WanKeeperTest, GroupMembersStayConsistentWithinZone) {
  Config cfg = Config::LanGrid3x3("wankeeper");
  BenchOptions options;
  options.workload = UniformWorkload(20, 0.8);
  options.clients_per_zone = 2;
  options.duration_s = 1.0;
  Cluster cluster(cfg);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  ASSERT_GT(result.completed, 100u);
  cluster.RunFor(kSecond);  // group flush
  std::vector<Key> keys;
  for (Key k = 0; k < 20; ++k) keys.push_back(k);
  ConsensusChecker consensus(/*within_zone_only=*/true);
  EXPECT_TRUE(consensus.Check(cluster, keys).empty());
}

TEST(WanKeeperTest, MasterZoneEnjoysLocalLatencyInWan) {
  // Fig. 11b: Ohio (the master region) sees near-local latency for the
  // contended key while remote regions pay WAN round trips.
  Config cfg = Config::Wan5("wankeeper");  // master zone 2 = Ohio
  Cluster cluster(cfg);
  Bootstrap(cluster, 2 * kSecond);
  Client* ohio = cluster.NewClient(2);
  Client* california = cluster.NewClient(3);
  // Interleave so neither region earns the token.
  Sampler ohio_ms, ca_ms;
  for (int i = 0; i < 10; ++i) {
    auto r1 = PutAndWait(cluster, ohio, 0, "oh" + std::to_string(i),
                         NodeId{2, 1});
    ASSERT_TRUE(r1.status.ok());
    ohio_ms.Add(ToMillis(r1.latency));
    auto r2 = PutAndWait(cluster, california, 0, "ca" + std::to_string(i),
                         NodeId{3, 1});
    ASSERT_TRUE(r2.status.ok());
    ca_ms.Add(ToMillis(r2.latency));
  }
  EXPECT_LT(ohio_ms.mean(), 5.0);
  EXPECT_GT(ca_ms.mean(), 40.0);  // CA <-> OH is ~50 ms RTT
}

}  // namespace
}  // namespace paxi
