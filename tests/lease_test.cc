// Leader-lease suite: the skew-tolerance math, the lease read path and
// its degradation ladder, clock-skew safety edges at and beyond the
// tolerance band, lease revocation racing crash-restarts (durable and
// amnesia), a lease-attacking nemesis sweep over every protocol in both
// strict read modes, and the model-checked golden schedule where a
// deposed slow-clocked leaseholder serves a stale local read unless the
// skew-margin guard blocks it.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "checker/staleness.h"
#include "gtest/gtest.h"
#include "lease/lease.h"
#include "mc/linearizability.h"
#include "mc/scenario.h"
#include "mc/universe.h"
#include "sim/auditor.h"
#include "test_util.h"

namespace paxi {
namespace {

// --- Skew-tolerance math -----------------------------------------------------

TEST(LeaseMathTest, SkewToleranceBand) {
  // tol = sqrt(lease / (lease - margin)): the symmetric factor by which a
  // clock may run fast or slow before a margined holder can outlive the
  // quorum promise. 500/180 is the fixture used throughout this file
  // because it lands exactly on 1.25.
  EXPECT_DOUBLE_EQ(
      LeaseSkewTolerance(500 * kMillisecond, 180 * kMillisecond), 1.25);
  EXPECT_NEAR(LeaseSkewTolerance(400 * kMillisecond, 100 * kMillisecond),
              std::sqrt(4.0 / 3.0), 1e-12);
  // A wider margin buys tolerance for more skew.
  EXPECT_GT(LeaseSkewTolerance(400 * kMillisecond, 150 * kMillisecond),
            LeaseSkewTolerance(400 * kMillisecond, 100 * kMillisecond));
}

TEST(LeaseMathTest, ReadModeParamRoundTrip) {
  EXPECT_EQ(ReadModeFromParam("full"), ReadMode::kFull);
  EXPECT_EQ(ReadModeFromParam("leader_lease"), ReadMode::kLeaderLease);
  EXPECT_EQ(ReadModeFromParam("quorum"), ReadMode::kQuorum);
  EXPECT_EQ(ReadModeFromParam("anything else"), ReadMode::kFull);
  EXPECT_EQ(ReadModeName(0), "full");
  EXPECT_EQ(ReadModeName(1), "leader_lease");
  EXPECT_EQ(ReadModeName(2), "quorum");
  EXPECT_EQ(ReadModeName(3), "relaxed_local");
}

// --- The lease read path -----------------------------------------------------

Config LeaseLan9(const std::string& mode) {
  Config cfg = Config::Lan9("paxos");
  cfg.params["read_mode"] = mode;
  return cfg;
}

NodeId AnyFollower(const Cluster& cluster) {
  for (const NodeId id : cluster.nodes()) {
    if (!(id == cluster.leader())) return id;
  }
  ADD_FAILURE() << "no follower in the cluster";
  return cluster.leader();
}

TEST(LeaseReadTest, LeaderServesLeaseReadsFollowersHoldPromises) {
  Config cfg = LeaseLan9("leader_lease");
  Cluster cluster(cfg);
  Bootstrap(cluster);

  const NodeId lid = cluster.leader();
  LeaseManager* lm = cluster.node(lid)->lease_manager();
  ASSERT_NE(lm, nullptr);
  EXPECT_TRUE(lm->capable());
  EXPECT_TRUE(lm->HoldsLeaseNow());
  LeaseManager* fm = cluster.node(AnyFollower(cluster))->lease_manager();
  ASSERT_NE(fm, nullptr);
  EXPECT_TRUE(fm->PromiseActive());
  EXPECT_FALSE(fm->HoldsLeaseNow());

  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());
  const auto get = GetAndWait(cluster, client, 1, lid);
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");
  EXPECT_EQ(get.read_mode, 1);
  EXPECT_GE(lm->read_stats().lease_reads, 1u);
}

TEST(LeaseReadTest, FollowerDegradesToQuorumRead) {
  // In leader_lease mode a follower cannot serve locally; the ladder
  // drops it one rung to a read-quorum read, which needs no leader.
  Config cfg = LeaseLan9("leader_lease");
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "v1", cluster.leader()).status.ok());

  const NodeId fid = AnyFollower(cluster);
  const auto get = GetAndWait(cluster, client, 1, fid);
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");
  EXPECT_EQ(get.read_mode, 2);
  const auto& stats = cluster.node(fid)->lease_manager()->read_stats();
  EXPECT_GE(stats.quorum_reads, 1u);
  EXPECT_GE(stats.degrade_to_quorum, 1u);
}

TEST(LeaseReadTest, QuorumModeNeedsNoLeaderFastPath) {
  Config cfg = LeaseLan9("quorum");
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "v1", cluster.leader()).status.ok());
  const auto get = GetAndWait(cluster, client, 1, AnyFollower(cluster));
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");
  EXPECT_EQ(get.read_mode, 2);
}

TEST(LeaseReadTest, ExpiredLeaseDegradesThenHeartbeatRenews) {
  Config cfg = LeaseLan9("leader_lease");
  Cluster cluster(cfg);
  Bootstrap(cluster);
  const NodeId lid = cluster.leader();
  LeaseManager* lm = cluster.node(lid)->lease_manager();
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());
  ASSERT_EQ(GetAndWait(cluster, client, 1, lid).read_mode, 1);
  lm->DrainTransitions();

  // Revoke: the very next read must descend the ladder, not go stale.
  cluster.ExpireLease(lid);
  EXPECT_FALSE(lm->HoldsLeaseNow());
  const auto degraded = GetAndWait(cluster, client, 1, lid);
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_EQ(degraded.value, "v1");
  EXPECT_EQ(degraded.read_mode, 2);
  EXPECT_GE(lm->read_stats().degrade_to_quorum, 1u);

  // The grant round piggybacks on heartbeats (100 ms): a few beats later
  // the lease is re-acquired and local serving resumes.
  cluster.RunFor(400 * kMillisecond);
  EXPECT_TRUE(lm->HoldsLeaseNow());
  EXPECT_EQ(GetAndWait(cluster, client, 1, lid).read_mode, 1);

  // Both edges of the round trip are telemetry-visible transitions.
  bool down = false, up = false;
  for (const auto& t : lm->DrainTransitions()) {
    if (t.from_mode == 1 && t.to_mode != 1) down = true;
    if (t.from_mode != 1 && t.to_mode == 1) up = true;
  }
  EXPECT_TRUE(down) << "lease -> weaker transition not recorded";
  EXPECT_TRUE(up) << "weaker -> lease transition not recorded";
}

// --- Clock-skew safety edges -------------------------------------------------

TEST(LeaseSkewTest, SkewExactlyAtToleranceStillServes) {
  // lease 500 / margin 180 puts the tolerance band edge at exactly 1.25;
  // the band is inclusive, so a clock at the edge is still safe — the
  // margin is sized for precisely this much drift.
  Config cfg = LeaseLan9("leader_lease");
  cfg.params["lease_ms"] = "500";
  cfg.params["lease_skew_margin_ms"] = "180";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  const NodeId lid = cluster.leader();
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());

  cluster.SetClockSkew(lid, 1.25);
  cluster.RunFor(600 * kMillisecond);  // renewals continue under skew
  EXPECT_TRUE(cluster.node(lid)->lease_manager()->HoldsLeaseNow());
  const auto get = GetAndWait(cluster, client, 1, lid);
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.read_mode, 1);
}

TEST(LeaseSkewTest, SkewJustBeyondToleranceRefusesLocalReads) {
  Config cfg = LeaseLan9("leader_lease");
  cfg.params["lease_ms"] = "500";
  cfg.params["lease_skew_margin_ms"] = "180";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  const NodeId lid = cluster.leader();
  LeaseManager* lm = cluster.node(lid)->lease_manager();
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());

  // 5% past the band edge: the margin no longer covers the drift, so the
  // holder must stop trusting its own clock immediately.
  cluster.SetClockSkew(lid, 1.25 * 1.05);
  EXPECT_FALSE(lm->HoldsLeaseNow());
  const auto degraded = GetAndWait(cluster, client, 1, lid);
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_EQ(degraded.value, "v1");
  EXPECT_NE(degraded.read_mode, 1);
  EXPECT_GE(lm->read_stats().degrade_to_quorum + lm->read_stats().degrade_to_full,
            1u);

  // Clock healed: renewal resumes and the fast path comes back.
  cluster.SetClockSkew(lid, 1.0);
  cluster.RunFor(800 * kMillisecond);
  EXPECT_TRUE(lm->HoldsLeaseNow());
  EXPECT_EQ(GetAndWait(cluster, client, 1, lid).read_mode, 1);
}

TEST(LeaseSkewTest, PartitionedHolderRefusesLocalReadsAfterExpiry) {
  Config cfg = LeaseLan9("leader_lease");
  cfg.client_timeout = 400 * kMillisecond;
  Cluster cluster(cfg);
  Bootstrap(cluster);
  const NodeId lid = cluster.leader();
  LeaseManager* lm = cluster.node(lid)->lease_manager();
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());

  std::vector<NodeId> others;
  for (const NodeId id : cluster.nodes()) {
    if (!(id == lid)) others.push_back(id);
  }
  cluster.transport().Partition({{lid}, others}, 3 * kSecond);
  // Default lease 400 ms, margin 100 ms: the margined validity lapses
  // 300 ms after the last quorum ack; 700 ms is comfortably past it.
  cluster.RunFor(700 * kMillisecond);
  EXPECT_FALSE(lm->HoldsLeaseNow());

  // A read aimed at the isolated ex-holder must never be served from its
  // local state: it degrades, stalls in the minority, and the client's
  // retry lands it on the majority side.
  const std::uint64_t lease_reads_before = lm->read_stats().lease_reads;
  const auto get = GetAndWait(cluster, client, 1, lid);
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v1");
  EXPECT_EQ(lm->read_stats().lease_reads, lease_reads_before)
      << "isolated ex-holder served a local read after expiry";
}

// --- Revocation racing crash-restart -----------------------------------------

Config RestartConfig() {
  Config cfg = LeaseLan9("leader_lease");
  cfg.params["durable"] = "1";
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;
  return cfg;
}

void ExpectProgressAndCleanAudit(Cluster& cluster, InvariantAuditor* auditor) {
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "v2", cluster.leader()).status.ok());
  const auto get = GetAndWait(cluster, client, 1, cluster.leader());
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "v2");
  auditor->AuditNow();
  EXPECT_TRUE(auditor->violations().empty())
      << auditor->violations().size() << " violations, first: "
      << auditor->violations()[0];
}

TEST(LeaseRestartTest, DurableRestartWhileHoldingLeaseStaysExclusive) {
  // Crash the holder mid-lease with no revoke: the WAL-persisted promise
  // window must keep the recovered node and any new leader from ever
  // claiming the lease at once.
  Config cfg = RestartConfig();
  Cluster cluster(cfg);
  InvariantAuditor* auditor = cluster.EnableAuditing(/*fail_fast=*/false);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  const NodeId lid = cluster.leader();
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());
  ASSERT_TRUE(cluster.node(lid)->lease_manager()->HoldsLeaseNow());

  cluster.RestartNode(lid, 600 * kMillisecond, Cluster::RestartMode::kDurable);
  cluster.RunFor(2 * kSecond);
  ExpectProgressAndCleanAudit(cluster, auditor);
}

TEST(LeaseRestartTest, RevocationRacesDurableRestart) {
  // Revoke and crash in the same instant: the revoke broadcast races the
  // crash, and recovery replays whatever promise state survived.
  Config cfg = RestartConfig();
  Cluster cluster(cfg);
  InvariantAuditor* auditor = cluster.EnableAuditing(/*fail_fast=*/false);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  const NodeId lid = cluster.leader();
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());

  cluster.node(lid)->ForceLeaseExpiry();
  cluster.RestartNode(lid, 300 * kMillisecond, Cluster::RestartMode::kDurable);
  cluster.RunFor(2 * kSecond);
  ExpectProgressAndCleanAudit(cluster, auditor);
}

TEST(LeaseRestartTest, AmnesiaRestartOutlivesItsPromises) {
  // An amnesiac node forgets the promises it granted; safety rests on the
  // deployment assumption that its downtime exceeds lease_ms (see
  // DESIGN.md), which 600 ms > 400 ms satisfies.
  Config cfg = RestartConfig();
  cfg.params.erase("durable");
  Cluster cluster(cfg);
  InvariantAuditor* auditor = cluster.EnableAuditing(/*fail_fast=*/false);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  const NodeId lid = cluster.leader();
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "v1", lid).status.ok());

  cluster.RestartNode(lid, 600 * kMillisecond, Cluster::RestartMode::kAmnesia);
  cluster.RunFor(2 * kSecond);
  ExpectProgressAndCleanAudit(cluster, auditor);
}

// --- Nemesis sweep: every protocol, both strict modes ------------------------

/// Lease-targeted chaos: random lease expiries, clocks pushed outside the
/// tolerance band and healed again, minority partitions. Everything a
/// strict read mode must absorb without a stale read.
void UnleashLeaseNemesis(Cluster& cluster, Time duration, std::uint64_t seed,
                         const std::vector<NodeId>& victims) {
  auto rng = std::make_shared<Rng>(seed);  // kept alive by the closures
  Simulator& sim = cluster.sim();
  const auto nodes = cluster.nodes();
  const std::size_t minority = (nodes.size() - 1) / 2;
  for (Time t = 300 * kMillisecond; t < duration; t += 400 * kMillisecond) {
    sim.At(sim.Now() + t, [&cluster, rng, nodes, victims, minority]() {
      const NodeId expire = victims[static_cast<std::size_t>(
          rng->UniformInt(0, static_cast<std::int64_t>(victims.size()) - 1))];
      cluster.ExpireLease(expire);
      // Push one clock outside the band (1.30 > the default 1.1547
      // tolerance), keep one mildly fast but inside it, or heal.
      const NodeId skewed = victims[static_cast<std::size_t>(
          rng->UniformInt(0, static_cast<std::int64_t>(victims.size()) - 1))];
      switch (rng->UniformInt(0, 2)) {
        case 0:
          cluster.SetClockSkew(skewed, 1.30);
          break;
        case 1:
          cluster.SetClockSkew(skewed, 0.90);
          break;
        default:
          cluster.SetClockSkew(skewed, 1.0);
          break;
      }
      if (minority > 0 && rng->Bernoulli(0.4)) {
        std::vector<NodeId> shuffled = victims;
        rng->Shuffle(&shuffled);
        const std::vector<NodeId> side(shuffled.begin(), shuffled.begin() + 1);
        std::vector<NodeId> rest;
        for (const NodeId id : nodes) {
          if (!(id == side[0])) rest.push_back(id);
        }
        cluster.transport().Partition({side, rest}, 150 * kMillisecond);
      }
    });
  }
  // Heal every clock before the tail of the run so the final reads can
  // climb back onto the fast path.
  sim.At(sim.Now() + duration, [&cluster, victims]() {
    for (const NodeId id : victims) cluster.SetClockSkew(id, 1.0);
  });
}

bool LeaseCapable(const std::string& protocol) {
  return protocol == "paxos" || protocol == "fpaxos" || protocol == "raft";
}

class LeaseNemesisTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(LeaseNemesisTest, StrictModesStayLinearizableUnderLeaseChaos) {
  const std::string protocol = std::get<0>(GetParam());
  const std::string mode = std::get<1>(GetParam());
  Config cfg = Config::Lan9(protocol);
  cfg.params["read_mode"] = mode;
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;

  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/25, /*write_ratio=*/0.3);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;  // audit everything, chaos included
  options.duration_s = 3.0;
  options.record_ops = true;

  Cluster cluster(cfg);
  InvariantAuditor* auditor = cluster.EnableAuditing(/*fail_fast=*/false);
  UnleashLeaseNemesis(cluster, 3 * kSecond, /*seed=*/0x1EA5E, cluster.nodes());
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 100u);

  const auto report = CheckReadModes(result.ops, 200 * kMillisecond);
  EXPECT_TRUE(report.ok())
      << protocol << "/" << mode << ": "
      << report.strict_anomalies.size() << " strict anomalies, "
      << report.unlabeled.size() << " unlabeled reads"
      << (report.strict_anomalies.empty()
              ? ""
              : ", first: " + report.strict_anomalies[0].reason);
  EXPECT_EQ(report.reads_by_mode[3], 0u)
      << "strict deployments must never emit relaxed-mode reads";
  if (LeaseCapable(protocol)) {
    const std::size_t wanted = mode == "leader_lease" ? 1 : 2;
    EXPECT_GT(report.reads_by_mode[wanted], 0u)
        << protocol << " never served a " << mode << " read";
  } else {
    // Protocols without lease support degrade every read to the full
    // round — silently serving a fast-path read would be a lie.
    EXPECT_EQ(report.reads_by_mode[1] + report.reads_by_mode[2], 0u);
  }
  EXPECT_TRUE(auditor->violations().empty())
      << protocol << "/" << mode << ": " << auditor->violations()[0];
}

INSTANTIATE_TEST_SUITE_P(
    FlatProtocols, LeaseNemesisTest,
    ::testing::Combine(::testing::Values("paxos", "fpaxos", "raft", "epaxos",
                                         "mencius"),
                       ::testing::Values("leader_lease", "quorum")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           i) { return std::get<0>(i.param) + "_" + std::get<1>(i.param); });

class HierarchicalLeaseNemesisTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(HierarchicalLeaseNemesisTest, FollowerChaosKeepsStrictModesClean) {
  // WanKeeper/VPaxos pin zone leadership by design, so the nemesis only
  // attacks followers — mirroring the jepsen suite's deployment
  // assumptions for hierarchical protocols.
  const std::string protocol = std::get<0>(GetParam());
  const std::string mode = std::get<1>(GetParam());
  Config cfg = Config::LanGrid3x3(protocol);
  cfg.params["read_mode"] = mode;
  cfg.client_timeout = 500 * kMillisecond;

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.3);
  options.clients_per_zone = 3;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 3.0;
  options.record_ops = true;

  Cluster cluster(cfg);
  InvariantAuditor* auditor = cluster.EnableAuditing(/*fail_fast=*/false);
  std::vector<NodeId> followers;
  for (const NodeId id : cluster.nodes()) {
    if (id.node != 1) followers.push_back(id);
  }
  UnleashLeaseNemesis(cluster, 3 * kSecond, /*seed=*/0x1EA5F, followers);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 100u);
  const auto report = CheckReadModes(result.ops, 200 * kMillisecond);
  EXPECT_TRUE(report.ok())
      << protocol << "/" << mode << ": "
      << (report.strict_anomalies.empty()
              ? "unlabeled or relaxed violation"
              : report.strict_anomalies[0].reason);
  EXPECT_EQ(report.reads_by_mode[1] + report.reads_by_mode[2] +
                report.reads_by_mode[3],
            0u)
      << "hierarchical protocols have no lease support; all reads degrade "
         "to the full round";
  EXPECT_TRUE(auditor->violations().empty())
      << protocol << "/" << mode << ": " << auditor->violations()[0];
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, HierarchicalLeaseNemesisTest,
    ::testing::Combine(::testing::Values("wpaxos", "wankeeper", "vpaxos"),
                       ::testing::Values("leader_lease", "quorum")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           i) { return std::get<0>(i.param) + "_" + std::get<1>(i.param); });

// --- Model-checked golden schedule -------------------------------------------
//
// The schedule the margin exists for: a leaseholder with a slow clock at
// the very edge of the tolerance band is partitioned from its granters.
// Its margined validity lapses before the quorum promises do; unmargined
// ("lease_margin_enforced=0") it believes in the lease for the full
// lease_ms on a clock running 1.25x slow — outliving the promises, so a
// new leader is elected and commits a write while the deposed holder
// still answers locally. The clean config must refuse that read; the
// mutated config must serve it stale and fail linearizability.

McOp McPut(Key key, const Value& value, int client_index, int after_step) {
  McOp op;
  op.kind = McOp::Kind::kPut;
  op.key = key;
  op.value = value;
  op.client_index = client_index;
  op.after_step = after_step;
  return op;
}

McOp McGet(Key key, int client_index, int after_step) {
  McOp op;
  op.kind = McOp::Kind::kGet;
  op.key = key;
  op.client_index = client_index;
  op.after_step = after_step;
  return op;
}

constexpr int kNever = 1 << 20;

McScenario StaleReadScenario(bool margin_enforced, std::uint64_t seed,
                             int y_step, int get_step) {
  McScenario s;
  s.protocol = "paxos";
  s.zones = 1;
  s.nodes_per_zone = 3;
  s.seed = seed;
  s.params["read_mode"] = "leader_lease";
  s.params["lease_ms"] = "500";
  s.params["lease_skew_margin_ms"] = "180";  // tolerance band edge = 1.25
  // Promises must lapse before any campaign starts (a lease-refused
  // candidate only retries on its election timer), so the election
  // timeout sits just past lease_ms — the same invariant production
  // configs keep. Fast heartbeats keep the holder's last grant round
  // close to the partition instant, which is what holds the unmargined
  // validity window open long enough for the election to land inside it.
  s.params["election_timeout_ms"] = "520";
  s.params["heartbeat_ms"] = "25";
  // Client ids start at 1, so with spread_clients the three sessions pin
  // to 1.2 (put x, forwarded to the leader), 1.3 (put y) and 1.1 (the
  // get, aimed straight at the deposed holder).
  s.params["spread_clients"] = "true";
  if (!margin_enforced) s.params["lease_margin_enforced"] = "0";
  // The holder's clock sits exactly on the (inclusive) band edge — legal,
  // and the worst drift the margin is sized for: unmargined, a 1.25x-slow
  // holder believes in its lease for 625 ms of real time against quorum
  // promises that lapse at 500 ms.
  s.clock_skew[NodeId{1, 1}] = 1.25;
  s.max_drops = 0;
  s.max_timer_steps = 400;
  s.ops = {McPut(1, "x", /*client_index=*/0, /*after_step=*/0),
           McPut(1, "y", /*client_index=*/1, y_step),
           McGet(1, /*client_index=*/2, get_step)};
  return s;
}

bool IsReplica(NodeId id) { return id.node < Client::kClientNodeBase; }

/// Replica-to-replica traffic touching the isolated ex-holder 1.1;
/// client links stay up (a partition severs peers, not clients).
bool CutByPartition(const McUniverse::Parked& p) {
  const NodeId isolated{1, 1};
  return (p.to == isolated && IsReplica(p.msg->from)) ||
         (p.msg->from == isolated && IsReplica(p.to));
}

/// FIFO over the deliveries the partition allows; timers once the
/// reachable network is quiet. The partition engages at a fixed step
/// count so a discovered schedule replays identically.
template <typename Pred>
void DrivePartitioned(McUniverse& u, int partition_from, Pred done,
                      int max_steps = 4000) {
  for (int i = 0; i < max_steps; ++i) {
    if (done()) return;
    const bool engaged = u.steps_applied() >= partition_from;
    std::uint64_t pick = 0;
    bool have = false;
    for (const auto& p : u.parked()) {
      if (engaged && CutByPartition(p)) continue;
      pick = p.id;
      have = true;
      break;
    }
    if (have) {
      u.DeliverParked(pick);
    } else if (u.timer_steps_left() > 0 && u.HasPendingEvents()) {
      u.AdvanceTimer();
    } else {
      return;
    }
  }
}

struct GoldenSchedule {
  bool valid = false;
  std::uint64_t seed = 0;
  int partition_at = 0;
  int y_at = 0;
  int get_at = 0;
};

bool HoldsLease(McUniverse& u, NodeId id) {
  return u.cluster().node(id)->lease_manager()->HoldsLeaseNow();
}

/// Probe-run chain: deterministic replay means a step count discovered in
/// one universe stays valid in the next as long as the op list's
/// already-fired prefix is unchanged (later after_step values are inert
/// until they come due). Whether the election lands inside the deposed
/// holder's unmargined validity window depends on the seeded election
/// jitter, so the probes hunt seeds until one produces the overlap; the
/// margin flag changes no message (only the holder's private validity
/// arithmetic), so a schedule discovered with the margin off replays
/// identically with it on.
GoldenSchedule DiscoverGoldenSchedule() {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    GoldenSchedule g;
    g.seed = seed;
    {
      McUniverse probe(
          StaleReadScenario(/*margin_enforced=*/false, seed, kNever, kNever));
      // Phase 1: x committed and the lease held -> cut 1.1 off.
      DrivePartitioned(probe, kNever, [&] {
        return probe.op_records()[0].completed_step >= 0 &&
               HoldsLease(probe, NodeId{1, 1});
      });
      if (probe.op_records()[0].completed_step < 0) continue;
      g.partition_at = probe.steps_applied();
      // Phase 2 (same universe, partition engaged): drive until a
      // majority-side node wins the election — possible only once the old
      // quorum promises lapsed — and acquires its own lease while the
      // unmargined deposed holder still believes in its window.
      DrivePartitioned(probe, g.partition_at, [&] {
        return HoldsLease(probe, NodeId{1, 2}) ||
               HoldsLease(probe, NodeId{1, 3});
      });
      const bool overlap =
          (HoldsLease(probe, NodeId{1, 2}) || HoldsLease(probe, NodeId{1, 3})) &&
          HoldsLease(probe, NodeId{1, 1});
      if (!overlap) continue;  // jitter landed the election too late
      g.y_at = probe.steps_applied();
    }
    {
      McUniverse probe(
          StaleReadScenario(/*margin_enforced=*/false, seed, g.y_at, kNever));
      DrivePartitioned(probe, g.partition_at, [&] {
        return probe.op_records()[1].completed_step >= 0;
      });
      if (probe.op_records()[1].completed_step < 0) continue;
      if (!HoldsLease(probe, NodeId{1, 1})) continue;  // window closed
      g.get_at = probe.steps_applied();
    }
    g.valid = true;
    return g;
  }
  return {};
}

const GoldenSchedule& Golden() {
  static const GoldenSchedule g = DiscoverGoldenSchedule();
  return g;
}

TEST(LeaseGoldenScheduleTest, MarginBlocksTheDeposedHolderStaleRead) {
  const GoldenSchedule& g = Golden();
  ASSERT_TRUE(g.valid) << "no seed produced the deposed-holder overlap window";
  McUniverse clean(
      StaleReadScenario(/*margin_enforced=*/true, g.seed, g.y_at, g.get_at));
  DrivePartitioned(clean, g.partition_at, [&] {
    return clean.op_records()[2].completed_step >= 0;
  });

  // The margined validity lapsed before the promises did: the deposed
  // holder refuses the local read and descends the ladder instead. The
  // quorum probes are cut off and the full round cannot commit in a
  // minority, so the get either stays pending or completes on the
  // majority side with the new value — never stale.
  const auto& get = clean.op_records()[2];
  if (get.completed_step >= 0) {
    EXPECT_EQ(get.reply.value, "y");
  }
  std::string error;
  EXPECT_TRUE(CheckLinearizability(clean.op_records(), &error)) << error;
  EXPECT_TRUE(clean.violations().empty()) << clean.violations()[0];
  const auto& stats =
      clean.cluster().node(NodeId{1, 1})->lease_manager()->read_stats();
  EXPECT_GT(stats.degrade_to_quorum + stats.degrade_to_full, 0u)
      << "the deposed holder never descended the ladder";
}

TEST(LeaseGoldenScheduleTest, MutatedMarginServesTheStaleRead) {
  // Same schedule with the skew-margin guard compiled out by config: the
  // deposed holder trusts its slow clock, answers locally with the
  // pre-partition value, and the history no longer linearizes. This is
  // the counterexample that proves the margin logic is load-bearing.
  const GoldenSchedule& g = Golden();
  ASSERT_TRUE(g.valid) << "no seed produced the deposed-holder overlap window";
  McUniverse bad(
      StaleReadScenario(/*margin_enforced=*/false, g.seed, g.y_at, g.get_at));
  DrivePartitioned(bad, g.partition_at, [&] {
    return bad.op_records()[2].completed_step >= 0;
  });

  const auto& get = bad.op_records()[2];
  ASSERT_GE(get.completed_step, 0)
      << "the unguarded holder should have served the read locally";
  EXPECT_EQ(get.reply.read_mode, 1);
  EXPECT_EQ(get.reply.value, "x") << "expected the stale pre-partition value";
  EXPECT_GE(
      bad.cluster().node(NodeId{1, 1})->lease_manager()->read_stats().lease_reads,
      1u);
  std::string error;
  EXPECT_FALSE(CheckLinearizability(bad.op_records(), &error))
      << "a stale lease read must fail the linearizability check";
  // Third proof leg: the deposed holder and the new leader both claim the
  // lease during the overlap window, so the invariant auditor's
  // exclusivity rule must have tripped as well.
  EXPECT_FALSE(bad.violations().empty())
      << "double lease-hold escaped the invariant auditor";
}

}  // namespace
}  // namespace paxi
