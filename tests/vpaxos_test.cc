#include "benchmark/runner.h"
#include "checker/consensus.h"
#include "gtest/gtest.h"
#include "protocols/vpaxos/vpaxos.h"
#include "test_util.h"

namespace paxi {
namespace {

VPaxosReplica* Replica(Cluster& cluster, NodeId id) {
  auto* r = dynamic_cast<VPaxosReplica*>(cluster.node(id));
  EXPECT_NE(r, nullptr);
  return r;
}

TEST(VPaxosTest, DefaultOwnerZoneServes) {
  Config cfg = Config::LanGrid3x3("vpaxos");  // master & default owner: 1
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  auto put = PutAndWait(cluster, client, 3, "vp", NodeId{1, 1});
  ASSERT_TRUE(put.status.ok());
  EXPECT_EQ(GetAndWait(cluster, client, 3, NodeId{1, 1}).value, "vp");
}

TEST(VPaxosTest, RemoteZoneForwardsToOwner) {
  Cluster cluster(Config::LanGrid3x3("vpaxos"));
  Bootstrap(cluster);
  Client* c1 = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, c1, 5, "owned-by-1", NodeId{1, 1})
                  .status.ok());
  Client* c2 = cluster.NewClient(2);
  auto get = GetAndWait(cluster, c2, 5, NodeId{2, 1});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "owned-by-1");
}

TEST(VPaxosTest, SustainedRemoteDemandMigratesViaMaster) {
  Cluster cluster(Config::LanGrid3x3("vpaxos"));
  Bootstrap(cluster);
  Client* c3 = cluster.NewClient(3);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, c3, 6, "m" + std::to_string(i),
                           NodeId{3, 1})
                    .status.ok());
  }
  cluster.RunFor(kSecond);
  EXPECT_GE(Replica(cluster, {3, 1})->migrations(), 1u);
  // After migration, zone 3 commits locally: isolate it and keep going.
  for (const NodeId& a : cluster.nodes()) {
    for (const NodeId& b : cluster.nodes()) {
      if ((a.zone == 3) != (b.zone == 3)) {
        cluster.transport().Drop(a, b, 30 * kSecond);
      }
    }
  }
  auto put = PutAndWait(cluster, c3, 6, "local-after-move", NodeId{3, 1});
  EXPECT_TRUE(put.status.ok()) << put.status.ToString();
}

TEST(VPaxosTest, InterleavedDemandStaysPut) {
  Cluster cluster(Config::LanGrid3x3("vpaxos"));
  Bootstrap(cluster);
  Client* c2 = cluster.NewClient(2);
  Client* c3 = cluster.NewClient(3);
  for (int i = 0; i < 10; ++i) {
    PutAndWait(cluster, c2, 9, "b" + std::to_string(i), NodeId{2, 1});
    PutAndWait(cluster, c3, 9, "c" + std::to_string(i), NodeId{3, 1});
  }
  cluster.RunFor(kSecond);
  EXPECT_EQ(Replica(cluster, {2, 1})->migrations(), 0u);
  EXPECT_EQ(Replica(cluster, {3, 1})->migrations(), 0u);
}

TEST(VPaxosTest, WanDefaultOwnerIsOhio) {
  Config cfg = Config::Wan5("vpaxos");
  Cluster cluster(cfg);
  Bootstrap(cluster, 2 * kSecond);
  // A one-off request from Virginia forwards to Ohio: latency ~ VA-OH RTT.
  Client* va = cluster.NewClient(1);
  auto put = PutAndWait(cluster, va, 1, "via-ohio", NodeId{1, 1});
  ASSERT_TRUE(put.status.ok());
  EXPECT_GT(ToMillis(put.latency), 8.0);
  EXPECT_LT(ToMillis(put.latency), 40.0);
}

TEST(VPaxosTest, GroupsConsistentUnderLoad) {
  Config cfg = Config::LanGrid3x3("vpaxos");
  BenchOptions options;
  options.workload = UniformWorkload(25, 0.7);
  options.clients_per_zone = 2;
  options.duration_s = 1.0;
  Cluster cluster(cfg);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  ASSERT_GT(result.completed, 100u);
  EXPECT_EQ(result.errors, 0u);
  cluster.RunFor(kSecond);
  std::vector<Key> keys;
  for (Key k = 0; k < 25; ++k) keys.push_back(k);
  ConsensusChecker consensus(/*within_zone_only=*/true);
  EXPECT_TRUE(consensus.Check(cluster, keys).empty());
}

}  // namespace
}  // namespace paxi
