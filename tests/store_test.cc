#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "store/command.h"
#include "store/kvstore.h"
#include "store/log_storage.h"

namespace paxi {
namespace {

Command Put(Key key, const Value& value, ClientId c = 1, RequestId r = 1) {
  Command cmd;
  cmd.op = Command::Op::kPut;
  cmd.key = key;
  cmd.value = value;
  cmd.client = c;
  cmd.request = r;
  return cmd;
}

Command Get(Key key, ClientId c = 1, RequestId r = 1) {
  Command cmd;
  cmd.op = Command::Op::kGet;
  cmd.key = key;
  cmd.client = c;
  cmd.request = r;
  return cmd;
}

TEST(CommandTest, ConflictSemantics) {
  // Two ops interfere iff same key and at least one write (§2 EPaxos).
  EXPECT_TRUE(Put(1, "a").ConflictsWith(Put(1, "b")));
  EXPECT_TRUE(Put(1, "a").ConflictsWith(Get(1)));
  EXPECT_TRUE(Get(1).ConflictsWith(Put(1, "a")));
  EXPECT_FALSE(Get(1).ConflictsWith(Get(1)));
  EXPECT_FALSE(Put(1, "a").ConflictsWith(Put(2, "b")));
}

TEST(CommandTest, ToString) {
  EXPECT_EQ(Put(3, "v").ToString(), "PUT(3, v)");
  EXPECT_EQ(Get(3).ToString(), "GET(3)");
}

TEST(KvStoreTest, GetMissingIsNotFound) {
  KvStore store;
  EXPECT_TRUE(store.Get(42).status().IsNotFound());
  auto r = store.Execute(Get(42));
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(KvStoreTest, PutThenGet) {
  KvStore store;
  auto w = store.Execute(Put(1, "hello"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), "hello");
  auto r = store.Execute(Get(1, 1, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "hello");
  EXPECT_EQ(store.num_executed(), 2u);
  EXPECT_EQ(store.num_keys(), 1u);
}

TEST(KvStoreTest, MultiVersioning) {
  KvStore store;
  store.Execute(Put(7, "v1", 1, 1));
  store.Execute(Put(7, "v2", 1, 2));
  store.Execute(Put(7, "v3", 2, 1));
  const auto versions = store.Versions(7);
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].value, "v1");
  EXPECT_EQ(versions[0].version, 1);
  EXPECT_EQ(versions[2].value, "v3");
  EXPECT_EQ(versions[2].version, 3);
  EXPECT_EQ(versions[2].writer, (CommandId{2, 1}));
  EXPECT_EQ(store.Get(7).value(), "v3");
}

TEST(KvStoreTest, HistoriesTrackExecutionOrder) {
  KvStore store;
  store.Execute(Put(1, "a", 1, 1));
  store.Execute(Get(1, 2, 1));
  store.Execute(Put(1, "b", 1, 2));
  const auto history = store.History(1);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0], (CommandId{1, 1}));
  EXPECT_EQ(history[1], (CommandId{2, 1}));
  EXPECT_EQ(history[2], (CommandId{1, 2}));
  const auto writes = store.WriteHistory(1);
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0], (CommandId{1, 1}));
  EXPECT_EQ(writes[1], (CommandId{1, 2}));
}

TEST(KvStoreTest, IndependentKeys) {
  KvStore store;
  store.Execute(Put(1, "x"));
  store.Execute(Put(2, "y"));
  EXPECT_EQ(store.Get(1).value(), "x");
  EXPECT_EQ(store.Get(2).value(), "y");
  EXPECT_TRUE(store.History(3).empty());
  EXPECT_TRUE(store.Versions(3).empty());
}

TEST(LogStorageListenerTest, CompactionListenerFiresOnlyOnAdvance) {
  // Durable protocols hook WAL garbage collection on this callback
  // (log_storage.h), so its contract — fire once per advancing CompactTo,
  // with the new watermark and the real entry count dropped — is what
  // keeps the in-memory log and the on-disk log compacting in lockstep.
  LogStorage<int> log;
  for (Slot s = 0; s <= 9; ++s) log[s] = static_cast<int>(s);
  std::vector<std::pair<Slot, std::size_t>> calls;
  log.set_compaction_listener(
      [&calls](Slot watermark, std::size_t erased) {
        calls.emplace_back(watermark, erased);
      });

  EXPECT_EQ(log.CompactTo(4), 5u);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 4);
  EXPECT_EQ(calls[0].second, 5u);

  // A watermark that does not advance must not re-trigger WAL GC.
  EXPECT_EQ(log.CompactTo(4), 0u);
  EXPECT_EQ(log.CompactTo(2), 0u);
  EXPECT_EQ(calls.size(), 1u);

  // Holes below the watermark (entries already erased individually) are
  // not double-counted.
  log.erase(6);
  EXPECT_EQ(log.CompactTo(7), 2u);  // drops 5 and 7; 6 is a hole
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[1].first, 7);
  EXPECT_EQ(calls[1].second, 2u);
  EXPECT_EQ(log.snapshot_index(), 7);
  EXPECT_EQ(log.total_compacted(), 7u);
}

}  // namespace
}  // namespace paxi
