// Regression tests for the phase-1 recovery subtleties found while
// reproducing the paper's conflict experiments (see DESIGN.md,
// "Implementation notes"): committed-but-unwatermarked slots must survive
// leader/ownership changes, or logs develop permanent holes.

#include "gtest/gtest.h"
#include "protocols/paxos/paxos.h"
#include "protocols/wpaxos/wpaxos.h"
#include "test_util.h"

namespace paxi {
namespace {

TEST(RecoveryTest, WPaxosHandoffPreservesZoneCommittedEntries) {
  // With fz=0 and one node per zone, commits live only at the owner. A
  // continuous write stream punctuated by a handoff must lose nothing:
  // the new owner must learn committed slots from the old owner's P1b.
  Config cfg = Config::Wan5("wpaxos", 1);
  cfg.params["fz"] = "0";
  cfg.params["handoff_cooldown_ms"] = "0";
  Cluster cluster(cfg);
  Bootstrap(cluster);

  Client* c2 = cluster.NewClient(2);
  // Ohio owns the key and commits a burst locally (self-quorum).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, c2, 1, "oh-" + std::to_string(i),
                           NodeId{2, 1})
                    .status.ok());
  }
  // Sustained Virginia demand triggers the handoff; VA steals across the
  // WAN and must recover Ohio's committed tail.
  Client* c1 = cluster.NewClient(1);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, c1, 1, "va-" + std::to_string(i),
                           NodeId{1, 1})
                    .status.ok());
  }
  cluster.RunFor(2 * kSecond);
  // The new owner serves the latest value with no stalled log.
  auto get = GetAndWait(cluster, c1, 1, NodeId{1, 1});
  ASSERT_TRUE(get.status.ok()) << get.status.ToString();
  EXPECT_EQ(get.value, "va-5");
  auto* owner = dynamic_cast<WPaxosReplica*>(cluster.node({1, 1}));
  EXPECT_GE(owner->objects_owned(), 1u);
  // And the full write history is intact at the new owner.
  EXPECT_EQ(owner->store().WriteHistory(1).size(), 16u);
}

TEST(RecoveryTest, WPaxosRepeatedHandoffsNeverWedge) {
  // Ping-pong the object across three zones repeatedly; every request
  // must still complete (the Fig. 11 stall regression).
  Config cfg = Config::Wan5("wpaxos", 1);
  cfg.params["fz"] = "0";
  cfg.params["handoff_cooldown_ms"] = "0";
  Cluster cluster(cfg);
  Bootstrap(cluster);

  Client* clients[3] = {cluster.NewClient(1), cluster.NewClient(2),
                        cluster.NewClient(3)};
  int writes = 0;
  for (int round = 0; round < 6; ++round) {
    Client* c = clients[round % 3];
    const int zone = (round % 3) + 1;
    for (int i = 0; i < 5; ++i) {
      auto put = PutAndWait(cluster, c, 7,
                            "r" + std::to_string(round) + "-" +
                                std::to_string(i),
                            NodeId{zone, 1});
      ASSERT_TRUE(put.status.ok())
          << "round " << round << " i " << i << ": "
          << put.status.ToString();
      ++writes;
    }
  }
  cluster.RunFor(2 * kSecond);
  // Whoever owns it last can still read the newest value.
  auto get = GetAndWait(cluster, clients[2], 7, NodeId{3, 1});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "r5-4");
  EXPECT_EQ(writes, 30);
}

TEST(RecoveryTest, PaxosLeaderChangeRecoversUnwatermarkedCommits) {
  // The leader commits entries whose watermark has not reached a
  // follower; that follower then becomes leader and must not leave holes.
  Config cfg = Config::Lan9("paxos");
  cfg.params["election_timeout_ms"] = "200";
  cfg.params["heartbeat_ms"] = "50";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, client, i, "v" + std::to_string(i),
                           cluster.leader())
                    .status.ok());
  }
  // Crash the leader immediately — its last commits may be watermarked
  // nowhere else.
  cluster.CrashNode(cluster.leader(), 60 * kSecond);
  cluster.RunFor(3 * kSecond);

  NodeId new_leader = NodeId::Invalid();
  for (const NodeId& id : cluster.nodes()) {
    auto* r = dynamic_cast<PaxosReplica*>(cluster.node(id));
    if (r->IsLeader() && !r->IsCrashed()) new_leader = id;
  }
  ASSERT_TRUE(new_leader.valid());

  // All ten writes must be readable through the new leader — committed
  // entries survived, and the log has no stalled gap.
  for (int i = 0; i < 10; ++i) {
    auto get = GetAndWait(cluster, client, i, new_leader);
    ASSERT_TRUE(get.status.ok()) << "key " << i;
    EXPECT_EQ(get.value, "v" + std::to_string(i)) << "key " << i;
  }
}

TEST(RecoveryTest, PaxosPipelinedCrashLosesNoAcknowledgedWrite) {
  // Pipeline writes without waiting, crash the leader mid-stream, then
  // verify every write that was acknowledged is durable.
  Config cfg = Config::Lan9("paxos");
  cfg.params["election_timeout_ms"] = "200";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);

  std::vector<int> acked;
  for (int i = 0; i < 50; ++i) {
    Command cmd;
    cmd.op = Command::Op::kPut;
    cmd.key = 100 + i;
    cmd.value = "p" + std::to_string(i);
    client->Issue(cmd, cluster.leader(), [&acked, i](const Client::Reply& r) {
      if (r.status.ok()) acked.push_back(i);
    });
    cluster.RunFor(200);  // 0.2 ms between issues: deep pipeline
  }
  cluster.CrashNode(cluster.leader(), 60 * kSecond);
  cluster.RunFor(5 * kSecond);

  NodeId new_leader = NodeId::Invalid();
  for (const NodeId& id : cluster.nodes()) {
    auto* r = dynamic_cast<PaxosReplica*>(cluster.node(id));
    if (r->IsLeader() && !r->IsCrashed()) new_leader = id;
  }
  ASSERT_TRUE(new_leader.valid());
  ASSERT_FALSE(acked.empty());
  for (int i : acked) {
    auto get = GetAndWait(cluster, client, 100 + i, new_leader);
    ASSERT_TRUE(get.status.ok()) << "acked write " << i << " lost";
    EXPECT_EQ(get.value, "p" + std::to_string(i));
  }
}

TEST(RecoveryTest, WPaxosLosingStealerHandsBacklogToWinner) {
  // Two zones steal the same unowned key concurrently; the loser must
  // abandon its phase-1 and its queued clients must still be served.
  Config cfg = Config::LanGrid3x3("wpaxos");
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* c1 = cluster.NewClient(1);
  Client* c3 = cluster.NewClient(3);

  int completed = 0;
  Command w1;
  w1.op = Command::Op::kPut;
  w1.key = 5;
  w1.value = "from-z1";
  c1->Issue(w1, NodeId{1, 1},
            [&](const Client::Reply& r) { completed += r.status.ok(); });
  Command w2;
  w2.op = Command::Op::kPut;
  w2.key = 5;
  w2.value = "from-z3";
  c3->Issue(w2, NodeId{3, 1},
            [&](const Client::Reply& r) { completed += r.status.ok(); });
  cluster.RunFor(5 * kSecond);
  EXPECT_EQ(completed, 2);

  std::size_t owners = 0;
  for (const NodeId& id : cluster.nodes()) {
    auto* w = dynamic_cast<WPaxosReplica*>(cluster.node(id));
    if (w->objects_owned() > 0) ++owners;
  }
  EXPECT_EQ(owners, 1u);  // exactly one side kept the object
}

}  // namespace
}  // namespace paxi
