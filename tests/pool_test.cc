#include "common/pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/config.h"
#include "net/message.h"
#include "sim/auditor.h"

namespace paxi {
namespace {

// --- Size-class round trips ------------------------------------------------

TEST(BlockPoolTest, RoundTripsEverySizeClass) {
  BlockPool& pool = BlockPool::Local();
  // Payload sizes chosen to land in each class (the 16-byte header is
  // added internally) plus one oversize request.
  const std::size_t sizes[] = {1, 40, 48, 100, 200, 440, 900, 1000, 5000};
  for (const std::size_t size : sizes) {
    void* p = pool.Allocate(size);
    ASSERT_NE(p, nullptr) << size;
    // The payload must be fully usable and max_align_t-aligned.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u)
        << size;
    std::memset(p, 0xab, size);
    BlockPool::Release(p);
  }
}

TEST(BlockPoolTest, FreeListReusesReleasedBlock) {
  BlockPool& pool = BlockPool::Local();
  void* first = pool.Allocate(100);
  BlockPool::Release(first);
  const std::uint64_t hits_before = pool.stats().freelist_hits;
  // Same class -> the free list must hand the same block straight back.
  void* second = pool.Allocate(100);
  EXPECT_EQ(second, first);
  EXPECT_EQ(pool.stats().freelist_hits, hits_before + 1);
  BlockPool::Release(second);
}

TEST(BlockPoolTest, DistinctClassesDoNotShareBlocks) {
  BlockPool& pool = BlockPool::Local();
  void* small = pool.Allocate(30);
  BlockPool::Release(small);
  // A much larger request must not be served from the small class's list.
  void* large = pool.Allocate(700);
  EXPECT_NE(large, small);
  BlockPool::Release(large);
}

TEST(BlockPoolTest, OversizeRequestsFallBackToHeap) {
  BlockPool& pool = BlockPool::Local();
  const std::uint64_t fallbacks_before = pool.stats().heap_fallbacks;
  void* big = pool.Allocate(BlockPool::kMaxClassBytes + 1);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(pool.stats().heap_fallbacks, fallbacks_before + 1);
  std::memset(big, 0xcd, BlockPool::kMaxClassBytes + 1);
  BlockPool::Release(big);
}

TEST(BlockPoolTest, ExhaustedSlabFallsBackToHeapAndRecovers) {
  // A private pool (not Local()) so the cap can't interfere with other
  // tests on this thread.
  BlockPool pool;
  pool.SetSlabLimitForTest(64 * 1024);  // one slab chunk
  std::vector<void*> held;
  // Burn through the capped slab; the pool must keep serving (from the
  // heap) rather than failing.
  while (pool.stats().heap_fallbacks == 0) {
    ASSERT_LT(held.size(), 100'000u) << "slab cap never tripped";
    held.push_back(pool.Allocate(1000));
  }
  const std::uint64_t fallbacks = pool.stats().heap_fallbacks;
  EXPECT_GT(fallbacks, 0u);
  // Releasing pooled blocks refills the free list: the next allocation
  // must come from there, not the heap.
  for (void* p : held) BlockPool::Release(p);
  void* again = pool.Allocate(1000);
  EXPECT_EQ(pool.stats().heap_fallbacks, fallbacks);
  BlockPool::Release(again);
}

// --- Cross-thread release --------------------------------------------------

TEST(BlockPoolTest, ReleaseFromAnotherThreadIsReclaimed) {
  BlockPool& pool = BlockPool::Local();
  // Drain: allocate enough blocks of one class that the local free list
  // is empty for some of them.
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(pool.Allocate(100));

  // A worker (the shape of a sweep-engine thread handing results back)
  // releases them all: each lands on this pool's atomic remote stack.
  std::thread worker([&blocks]() {
    for (void* p : blocks) BlockPool::Release(p);
  });
  worker.join();

  // The owner thread reclaims the remote stack once the local list runs
  // dry; every one of the 64 blocks must come back.
  const std::uint64_t reclaims_before = pool.stats().remote_reclaims;
  std::vector<void*> again;
  for (int i = 0; i < 64; ++i) again.push_back(pool.Allocate(100));
  EXPECT_GE(pool.stats().remote_reclaims, reclaims_before + 64);
  for (void* p : again) BlockPool::Release(p);
}

TEST(BlockPoolTest, BlocksSurviveTheirAllocatingThread) {
  // Allocate on a worker, release on the main thread after the worker has
  // exited: the worker's pool core must stay alive (refcounted by the
  // outstanding blocks) until the last release.
  void* escaped = nullptr;
  std::thread worker([&escaped]() {
    escaped = BlockPool::Local().Allocate(200);
    std::memset(escaped, 0x5a, 200);
  });
  worker.join();
  ASSERT_NE(escaped, nullptr);
  // The payload is still readable; releasing must not touch freed memory
  // (ASan would flag both).
  unsigned char probe[200];
  std::memcpy(probe, escaped, 200);
  EXPECT_EQ(probe[0], 0x5a);
  EXPECT_EQ(probe[199], 0x5a);
  BlockPool::Release(escaped);
}

// --- MessagePtr lifecycle on top of the pool -------------------------------

struct PoolTestMsg : Message {
  int payload = 0;
};

TEST(MessagePtrTest, RefcountGovernsReturnToPool) {
  MessagePtr a = MakeMessage<PoolTestMsg>();
  EXPECT_EQ(a.use_count(), 1u);
  {
    MessagePtr b = a;  // broadcast-style sharing: one instance, two refs
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(a.get(), b.get());
  }
  EXPECT_EQ(a.use_count(), 1u);
  const void* block = a.get();
  a = MessagePtr();  // last ref: destructor runs, block returns to pool
  // The freed block is at the head of its class's free list.
  PoolTestMsg probe;
  probe.payload = 7;
  MessagePtr c = MakeMessage<PoolTestMsg>(probe);
  EXPECT_EQ(static_cast<const void*>(c.get()), block);
  EXPECT_EQ(static_cast<const PoolTestMsg*>(c.get())->payload, 7);
}

TEST(MessagePtrTest, MoveTransfersWithoutRefcountTraffic) {
  MessagePtr a = MakeMessage<PoolTestMsg>();
  const Message* raw = a.get();
  MessagePtr b = std::move(a);
  EXPECT_EQ(a.get(), nullptr);
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(b.use_count(), 1u);
}

// --- Determinism: pooling must be invisible to replay ----------------------

// Runs a full Paxos cluster scenario twice in one process. The first run
// warms this thread's pool, so the second run is served almost entirely
// from recycled blocks — same workload, different (recycled) message
// addresses. Identical fingerprint traces prove address recycling cannot
// leak into behaviour (nothing keys on message addresses), i.e. pooled
// and fresh-heap runs are byte-identical.
TEST(BlockPoolTest, SameSeedReplayIsByteIdenticalAcrossPoolReuse) {
  const ReplayReport report = AuditReplay([](TraceRecorder& rec) {
    Config config = Config::Lan9("paxos");
    Cluster cluster(config);
    cluster.sim().AddObserver(&rec);
    cluster.Start();
    Client* client = cluster.NewClient(1);
    for (RequestId r = 1; r <= 30; ++r) {
      client->Put(static_cast<Key>(r), "pool" + std::to_string(r),
                  cluster.TargetFor(1), [](const Client::Reply&) {});
    }
    cluster.RunFor(2 * kSecond);
  });
  EXPECT_TRUE(report.deterministic) << report.detail;
  EXPECT_GT(report.events_a, 0u);
  EXPECT_EQ(report.events_a, report.events_b);
}

}  // namespace
}  // namespace paxi
