#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "protocols/epaxos/epaxos.h"
#include "test_util.h"

namespace paxi {
namespace {

EPaxosReplica* Replica(Cluster& cluster, NodeId id) {
  auto* r = dynamic_cast<EPaxosReplica*>(cluster.node(id));
  EXPECT_NE(r, nullptr);
  return r;
}

TEST(EPaxosTest, AnyReplicaCommitsACommand) {
  Cluster cluster(Config::Lan9("epaxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  for (int n = 1; n <= 9; n += 4) {
    auto put = PutAndWait(cluster, client, n, "led-by-" + std::to_string(n),
                          NodeId{1, n});
    EXPECT_TRUE(put.status.ok()) << "replica 1." << n;
  }
}

TEST(EPaxosTest, ReadSeesPriorWrite) {
  Cluster cluster(Config::Lan9("epaxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 7, "epx", NodeId{1, 2}).status.ok());
  // Read through a different opportunistic leader: dependency ordering
  // must still deliver the write first.
  auto get = GetAndWait(cluster, client, 7, NodeId{1, 6});
  ASSERT_TRUE(get.status.ok()) << get.status.ToString();
  EXPECT_EQ(get.value, "epx");
}

TEST(EPaxosTest, NonInterferingCommandsTakeFastPath) {
  Cluster cluster(Config::Lan9("epaxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  // Distinct keys through distinct leaders: no conflicts anywhere.
  for (int i = 0; i < 20; ++i) {
    PutAndWait(cluster, client, 100 + i, "v", NodeId{1, 1 + (i % 9)});
  }
  std::size_t fast = 0, slow = 0;
  for (const NodeId& id : cluster.nodes()) {
    fast += Replica(cluster, id)->fast_path_commits();
    slow += Replica(cluster, id)->slow_path_commits();
  }
  EXPECT_GE(fast, 20u);
  EXPECT_EQ(slow, 0u);
}

TEST(EPaxosTest, ConcurrentConflictsForceSlowPath) {
  Cluster cluster(Config::Lan9("epaxos"));
  Bootstrap(cluster);
  // Two clients hammer the same key via different leaders concurrently.
  Client* c1 = cluster.NewClient(1);
  Client* c2 = cluster.NewClient(1);
  int completed = 0;
  for (int i = 0; i < 30; ++i) {
    Command w1;
    w1.op = Command::Op::kPut;
    w1.key = 0;
    w1.value = "a" + std::to_string(i);
    c1->Issue(w1, NodeId{1, 1}, [&](const Client::Reply&) { ++completed; });
    Command w2;
    w2.op = Command::Op::kPut;
    w2.key = 0;
    w2.value = "b" + std::to_string(i);
    c2->Issue(w2, NodeId{1, 5}, [&](const Client::Reply&) { ++completed; });
    cluster.RunFor(2 * kMillisecond);
  }
  cluster.RunFor(kSecond);
  EXPECT_EQ(completed, 60);
  std::size_t slow = 0;
  for (const NodeId& id : cluster.nodes()) {
    slow += Replica(cluster, id)->slow_path_commits();
  }
  EXPECT_GT(slow, 0u);
}

TEST(EPaxosTest, AllReplicasExecuteConflictingWritesInSameOrder) {
  Cluster cluster(Config::Lan9("epaxos"));
  Bootstrap(cluster);
  Client* c1 = cluster.NewClient(1);
  Client* c2 = cluster.NewClient(1);
  for (int i = 0; i < 20; ++i) {
    Command w1;
    w1.op = Command::Op::kPut;
    w1.key = 5;
    w1.value = "x" + std::to_string(i);
    c1->Issue(w1, NodeId{1, 2}, [](const Client::Reply&) {});
    Command w2;
    w2.op = Command::Op::kPut;
    w2.key = 5;
    w2.value = "y" + std::to_string(i);
    c2->Issue(w2, NodeId{1, 8}, [](const Client::Reply&) {});
    cluster.RunFor(3 * kMillisecond);
  }
  cluster.RunFor(2 * kSecond);

  // Every replica that executed the full history must agree on the order.
  std::vector<CommandId> reference;
  for (const NodeId& id : cluster.nodes()) {
    const auto history = cluster.node(id)->store().WriteHistory(5);
    if (history.size() > reference.size()) reference = history;
  }
  ASSERT_EQ(reference.size(), 40u);
  for (const NodeId& id : cluster.nodes()) {
    const auto history = cluster.node(id)->store().WriteHistory(5);
    for (std::size_t i = 0; i < history.size(); ++i) {
      EXPECT_EQ(history[i], reference[i])
          << "divergence at " << i << " on " << id.ToString();
    }
  }
}

TEST(EPaxosTest, LinearizableUnderContendedLoad) {
  Config cfg = Config::Lan9("epaxos");
  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/10, /*write_ratio=*/0.5);
  options.clients_per_zone = 6;
  options.duration_s = 1.0;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  ASSERT_GT(result.completed, 100u);
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

TEST(EPaxosTest, ProcessingPenaltyIsConfigurable) {
  Config cfg = Config::Lan9("epaxos");
  cfg.params["penalty"] = "1.0";
  BenchOptions options;
  options.workload = UniformWorkload(1000, 0.5);
  options.clients_per_zone = 2;
  options.duration_s = 0.5;
  const BenchResult cheap = RunBenchmark(cfg, options);
  cfg.params["penalty"] = "4.0";
  const BenchResult heavy = RunBenchmark(cfg, options);
  ASSERT_GT(cheap.completed, 50u);
  ASSERT_GT(heavy.completed, 50u);
  EXPECT_LT(cheap.MeanLatencyMs(), heavy.MeanLatencyMs());
}

}  // namespace
}  // namespace paxi
