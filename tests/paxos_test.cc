#include "benchmark/runner.h"
#include "checker/consensus.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "protocols/paxos/paxos.h"
#include "test_util.h"

namespace paxi {
namespace {

TEST(PaxosTest, ElectsConfiguredLeader) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  auto* leader = dynamic_cast<PaxosReplica*>(cluster.node({1, 1}));
  ASSERT_NE(leader, nullptr);
  EXPECT_TRUE(leader->IsLeader());
  int leaders = 0;
  for (const NodeId& id : cluster.nodes()) {
    if (dynamic_cast<PaxosReplica*>(cluster.node(id))->IsLeader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(PaxosTest, PutThenGetRoundTrip) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);

  auto put = PutAndWait(cluster, client, 5, "hello", cluster.leader());
  ASSERT_TRUE(put.status.ok()) << put.status.ToString();

  auto get = GetAndWait(cluster, client, 5, cluster.leader());
  ASSERT_TRUE(get.status.ok()) << get.status.ToString();
  EXPECT_EQ(get.value, "hello");
  EXPECT_TRUE(get.found);
}

TEST(PaxosTest, GetMissingKeyIsNotFound) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  auto get = GetAndWait(cluster, client, 999, cluster.leader());
  EXPECT_TRUE(get.status.IsNotFound());
}

TEST(PaxosTest, FollowerForwardsToLeader) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  // Address a follower; the request must still commit via the leader.
  auto put = PutAndWait(cluster, client, 1, "forwarded", NodeId{1, 5});
  ASSERT_TRUE(put.status.ok());
  auto get = GetAndWait(cluster, client, 1, cluster.leader());
  EXPECT_EQ(get.value, "forwarded");
}

TEST(PaxosTest, CommitsPropagateToFollowers) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  for (int i = 0; i < 20; ++i) {
    PutAndWait(cluster, client, i, "v" + std::to_string(i),
               cluster.leader());
  }
  // Heartbeats flush the commit watermark to followers.
  cluster.RunFor(kSecond);
  for (const NodeId& id : cluster.nodes()) {
    auto* replica = dynamic_cast<PaxosReplica*>(cluster.node(id));
    EXPECT_GE(replica->committed_up_to(), 19) << id.ToString();
    EXPECT_EQ(replica->store().Get(7).value(), "v7") << id.ToString();
  }
}

TEST(PaxosTest, LeaderCrashTriggersFailover) {
  Config cfg = Config::Lan9("paxos");
  cfg.params["election_timeout_ms"] = "200";
  cfg.params["heartbeat_ms"] = "50";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "before", cluster.leader()).status.ok());

  // Freeze the leader well past the election timeout.
  cluster.CrashNode(cluster.leader(), 10 * kSecond);
  cluster.RunFor(2 * kSecond);

  int leaders = 0;
  NodeId new_leader;
  for (const NodeId& id : cluster.nodes()) {
    auto* replica = dynamic_cast<PaxosReplica*>(cluster.node(id));
    if (replica->IsLeader() && !replica->IsCrashed()) {
      ++leaders;
      new_leader = id;
    }
  }
  ASSERT_GE(leaders, 1);
  EXPECT_NE(new_leader, cluster.leader());

  // The cluster keeps serving through the new leader.
  auto put = PutAndWait(cluster, client, 2, "after", new_leader);
  EXPECT_TRUE(put.status.ok()) << put.status.ToString();
}

TEST(PaxosTest, SurvivesMinorityMessageLoss) {
  Cluster cluster(Config::Lan9("paxos"));
  Bootstrap(cluster);
  // Cut the leader off from 3 of 8 followers (majority still reachable).
  for (int n = 7; n <= 9; ++n) {
    cluster.transport().Drop({1, 1}, {1, n}, 10 * kSecond);
    cluster.transport().Drop({1, n}, {1, 1}, 10 * kSecond);
  }
  Client* client = cluster.NewClient(1);
  auto put = PutAndWait(cluster, client, 1, "resilient", cluster.leader());
  EXPECT_TRUE(put.status.ok());
}

TEST(PaxosTest, LoadBenchmarkIsLinearizableAndConsistent) {
  Config cfg = Config::Lan9("paxos");
  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/50, /*write_ratio=*/0.5);
  options.clients_per_zone = 8;
  options.duration_s = 1.0;
  options.warmup_s = 0.2;
  options.record_ops = true;

  Cluster cluster(cfg);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  EXPECT_GT(result.throughput, 100.0);
  EXPECT_EQ(result.errors, 0u);

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalous reads, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);

  cluster.RunFor(kSecond);  // let watermarks flush
  std::vector<Key> keys;
  for (Key k = 0; k < 50; ++k) keys.push_back(k);
  ConsensusChecker consensus;
  EXPECT_TRUE(consensus.Check(cluster, keys).empty());
}

TEST(PaxosTest, LeaderIsTheBusiestNode) {
  // §5.2: the leader handles ~N+2 messages per round, followers ~2.
  Config cfg = Config::Lan9("paxos");
  BenchOptions options;
  options.workload = UniformWorkload(100, 0.5);
  options.clients_per_zone = 4;
  options.duration_s = 1.0;

  Cluster cluster(cfg);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  const std::size_t leader_msgs = result.node_messages.at({1, 1});
  for (const auto& [id, msgs] : result.node_messages) {
    if (id == NodeId{1, 1}) continue;
    // Leader processes ~N/2 times more messages than any follower.
    EXPECT_GT(leader_msgs, 3 * msgs) << id.ToString();
  }
}

}  // namespace
}  // namespace paxi
