// Commit-pipeline tests (protocols/common/commit_pipeline.h): batch
// assembly and slot amortization, the in-flight window, the batch_wait
// timer, per-batch reply fan-out, and — the part that earns its keep —
// safety under faults with batching on: crash-restart mid-batch,
// duplicated/reordered batch messages, and at-most-once admission across
// batch boundaries, all with linearizability plus fail-fast invariant
// audits.

#include <cstdlib>
#include <string>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "core/cluster.h"
#include "fault/nemesis.h"
#include "fault/schedule.h"
#include "gtest/gtest.h"
#include "sim/auditor.h"
#include "test_util.h"

namespace paxi {
namespace {

class ScopedAudit {
 public:
  ScopedAudit() { setenv("PAXI_AUDIT", "1", 1); }
  ~ScopedAudit() { unsetenv("PAXI_AUDIT"); }
};

/// Runs a standard closed-loop benchmark on `cfg` and returns the result
/// with per-op records for the linearizability checker.
BenchResult RunStandard(Cluster& cluster, double duration_s,
                        int clients_per_zone = 8) {
  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = clients_per_zone;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = duration_s;
  options.record_ops = true;
  BenchRunner runner(&cluster, options);
  return runner.Run();
}

void ExpectLinearizable(const BenchResult& result, const std::string& what) {
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << what << ": " << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

// ---------------------------------------------------------------------------
// Batching mechanics.
// ---------------------------------------------------------------------------

// Batching amortizes log slots: at saturation a batched leader commits
// the same ops in far fewer slots. The per-slot audit digests (fail-fast
// auditor) must agree across replicas either way.
TEST(CommitPipelineTest, BatchingPacksMultipleCommandsPerSlot) {
  ScopedAudit audit;
  double ops_per_slot[2] = {0, 0};
  const int batches[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    Config cfg = Config::Lan9("paxos");
    cfg.nodes_per_zone = 5;
    cfg.params["batch_max"] = std::to_string(batches[i]);
    Cluster cluster(cfg);
    const BenchResult result = RunStandard(cluster, 2.0, /*clients=*/40);
    const Node::LogStats stats = cluster.node(NodeId{1, 1})->GetLogStats();
    ASSERT_GT(stats.applied, 0) << "batch_max=" << batches[i];
    ops_per_slot[i] = static_cast<double>(result.completed) /
                      static_cast<double>(stats.applied);
    ExpectLinearizable(result,
                       "paxos batch_max=" + std::to_string(batches[i]));
    ASSERT_NE(cluster.auditor(), nullptr);
    EXPECT_TRUE(cluster.auditor()->violations().empty());
  }
  // The batched run must pack well over 2x the commands per slot (the
  // exact fill depends on the closed-loop race between arrivals and slot
  // closes, but at 40 clients it is deep).
  EXPECT_GT(ops_per_slot[1], ops_per_slot[0] * 2.0);
}

// A 1-slot window serializes slots entirely; the pipeline must still
// drain its queue through repeated SlotClosed flushes.
TEST(CommitPipelineTest, SingleSlotWindowStillDrains) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["batch_max"] = "4";
  cfg.params["pipeline_window"] = "1";
  Cluster cluster(cfg);
  const BenchResult result = RunStandard(cluster, 2.0);
  EXPECT_GT(result.completed, 200u);
  EXPECT_EQ(result.errors, 0u);
  ExpectLinearizable(result, "paxos window=1");
}

// batch_wait_us holds partial batches for stragglers: at trickle load the
// timer — not the window — is what flushes, and every op must still
// complete (no forgotten batches).
TEST(CommitPipelineTest, BatchWaitTimerFlushesPartialBatches) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["batch_max"] = "8";
  cfg.params["batch_wait_us"] = "300";
  Cluster cluster(cfg);
  const BenchResult result = RunStandard(cluster, 2.0, /*clients=*/2);
  EXPECT_GT(result.completed, 100u);
  EXPECT_EQ(result.errors, 0u);
  // Every op waits out (some of) the 300us hold, so mean latency must
  // carry it; it is a hold, not a stall.
  EXPECT_GT(result.MeanLatencyMs(), 0.3);
  EXPECT_LT(result.MeanLatencyMs(), 5.0);
  ExpectLinearizable(result, "paxos batch_wait");
}

// Reply fan-out: with batching on, every client of a multi-command slot
// gets its own reply (closed-loop clients would starve otherwise).
TEST(CommitPipelineTest, EveryBatchedCommandGetsItsReply) {
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["batch_max"] = "8";
  Cluster cluster(cfg);
  const BenchResult result = RunStandard(cluster, 2.0, /*clients=*/40);
  EXPECT_GT(result.completed, 1000u);
  // Every issued op gets a reply before the client timeout: a dropped
  // done callback anywhere in the fan-out shows up as a timeout error.
  EXPECT_EQ(result.errors, 0u);
}

// ---------------------------------------------------------------------------
// Batching under faults: the acceptance checklist.
// ---------------------------------------------------------------------------

// Crash-restart mid-batch: the leader dies with batched slots in flight
// and queued intake; recovery must neither lose acknowledged commands
// nor double-apply replayed ones.
TEST(PipelineFaultTest, LeaderCrashRestartMidBatchStaysLinearizable) {
  ScopedAudit audit;
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["batch_max"] = "8";
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{
      1500 * kMillisecond,
      FaultAction::Restart(NodeId{1, 1}, 400 * kMillisecond,
                           Cluster::RestartMode::kDurable)});
  Nemesis nemesis(&cluster, schedule, nullptr);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 8;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 500u);
  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
  ExpectLinearizable(result, "paxos batched leader restart");
}

// Duplicated and reordered batch messages, plus duplicated client
// requests: at-most-once admission must hold across batch boundaries (a
// replayed request may race its original into a different batch), and
// re-delivered CommandBatch messages must not re-execute.
TEST(PipelineFaultTest, DuplicatedReorderedBatchesStayAtMostOnce) {
  ScopedAudit audit;
  Config cfg = Config::Lan9("paxos");
  cfg.nodes_per_zone = 5;
  cfg.params["batch_max"] = "8";
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  NemesisOptions opts;
  opts.start = kSecond;
  opts.period = 1500 * kMillisecond;
  opts.fault_duration = 600 * kMillisecond;
  opts.horizon = 4 * kSecond;
  opts.seed = 0xC0FFEE;
  opts.include_reorder = true;
  Nemesis nemesis(&cluster,
                  MakeBuiltinSchedule(BuiltinNemesis::kFlakyEverything,
                                      cfg.Nodes(), cluster.leader(), opts),
                  nullptr);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 8;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.5;
  options.record_ops = true;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(nemesis.executed(), 0u);
  EXPECT_GT(result.completed, 200u);
  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
  ExpectLinearizable(result, "paxos batched flaky links");
}

// Group-log batching under a mid-run restart: a WanKeeper zone follower
// dies while batched GroupP2as are in flight; the fill/snapshot catch-up
// path now carries batches and must reconverge on identical digests.
TEST(PipelineFaultTest, GroupLogBatchingSurvivesFollowerRestart) {
  ScopedAudit audit;
  Config cfg = Config::LanGrid3x3("wankeeper");
  cfg.params["batch_max"] = "4";
  cfg.client_timeout = 500 * kMillisecond;

  Cluster cluster(cfg);
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{
      1500 * kMillisecond,
      FaultAction::Restart(NodeId{1, 2}, 400 * kMillisecond,
                           Cluster::RestartMode::kDurable)});
  Nemesis nemesis(&cluster, schedule, nullptr);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 6;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 500u);
  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
  ExpectLinearizable(result, "wankeeper batched follower restart");
}

// ---------------------------------------------------------------------------
// Every protocol runs with batching on.
// ---------------------------------------------------------------------------

struct BatchedCase {
  std::string protocol;
  bool grid = false;
};

class BatchedProtocolTest : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(BatchedProtocolTest, BatchedRunIsLinearizableWithCleanAudits) {
  const BatchedCase& param = GetParam();
  ScopedAudit audit;
  Config cfg = param.grid ? Config::LanGrid3x3(param.protocol)
                          : Config::Lan9(param.protocol);
  if (!param.grid) cfg.nodes_per_zone = 5;
  cfg.params["batch_max"] = "4";

  Cluster cluster(cfg);
  const BenchResult result = RunStandard(cluster, 2.0);
  EXPECT_GT(result.completed, 200u) << param.protocol;
  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty()) << param.protocol;
  ExpectLinearizable(result, param.protocol + " batched");
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, BatchedProtocolTest,
    ::testing::Values(BatchedCase{"paxos", false}, BatchedCase{"fpaxos", false},
                      BatchedCase{"raft", false},
                      BatchedCase{"mencius", false},
                      BatchedCase{"epaxos", false}, BatchedCase{"wpaxos", true},
                      BatchedCase{"wankeeper", true},
                      BatchedCase{"vpaxos", true}),
    [](const ::testing::TestParamInfo<BatchedCase>& info) {
      return info.param.protocol;
    });

}  // namespace
}  // namespace paxi
