#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "protocols/fpaxos/fpaxos.h"
#include "test_util.h"

namespace paxi {
namespace {

TEST(FPaxosTest, BasicRoundTrip) {
  Config cfg = Config::Lan9("fpaxos");
  cfg.params["q2"] = "3";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(PutAndWait(cluster, client, 1, "flex", cluster.leader())
                  .status.ok());
  EXPECT_EQ(GetAndWait(cluster, client, 1, cluster.leader()).value, "flex");
}

TEST(FPaxosTest, CommitsWithOnlyQ2MinusOneFollowersReachable) {
  // |q2| = 3 -> the leader needs just 2 follower acks; cut off 6 of 8
  // followers and FPaxos must still commit (Paxos with majority = 5 could
  // not).
  Config cfg = Config::Lan9("fpaxos");
  cfg.params["q2"] = "3";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  for (int n = 4; n <= 9; ++n) {
    cluster.transport().Drop({1, 1}, {1, n}, 60 * kSecond);
    cluster.transport().Drop({1, n}, {1, 1}, 60 * kSecond);
  }
  Client* client = cluster.NewClient(1);
  auto put = PutAndWait(cluster, client, 1, "small-quorum", cluster.leader());
  EXPECT_TRUE(put.status.ok()) << put.status.ToString();
}

TEST(FPaxosTest, Phase1QuorumGrowsAsQ2Shrinks) {
  // |q1| = N - |q2| + 1: with q2=3 on 9 nodes, elections need 7 promises.
  // Cut 3 followers off and the default leader cannot win phase-1.
  Config cfg = Config::Lan9("fpaxos");
  cfg.params["q2"] = "3";
  Cluster cluster(cfg);
  for (int n = 7; n <= 9; ++n) {
    cluster.transport().Drop({1, n}, {1, 1}, 60 * kSecond);
  }
  Bootstrap(cluster);
  auto* leader = dynamic_cast<PaxosReplica*>(cluster.node({1, 1}));
  EXPECT_FALSE(leader->IsLeader());
}

TEST(FPaxosTest, LatencyNoWorseThanPaxosInLan) {
  // §5.2 "Small flexible quorums benefit": a modest latency edge in LAN.
  BenchOptions options;
  options.workload = UniformWorkload(100, 0.5);
  options.clients_per_zone = 2;
  options.duration_s = 1.0;

  Config paxos_cfg = Config::Lan9("paxos");
  Config fpaxos_cfg = Config::Lan9("fpaxos");
  fpaxos_cfg.params["q2"] = "3";

  const BenchResult paxos = RunBenchmark(paxos_cfg, options);
  const BenchResult fpaxos = RunBenchmark(fpaxos_cfg, options);
  ASSERT_GT(paxos.completed, 100u);
  ASSERT_GT(fpaxos.completed, 100u);
  EXPECT_LE(fpaxos.MeanLatencyMs(), paxos.MeanLatencyMs() * 1.05);
}

TEST(FPaxosTest, LinearizableUnderLoad) {
  Config cfg = Config::Lan9("fpaxos");
  cfg.params["q2"] = "3";
  BenchOptions options;
  options.workload = UniformWorkload(20, 0.5);
  options.clients_per_zone = 6;
  options.duration_s = 1.0;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  EXPECT_TRUE(lin.Check().empty());
}

class FPaxosQ2Sweep : public ::testing::TestWithParam<int> {};

TEST_P(FPaxosQ2Sweep, AllQ2ValuesCommit) {
  Config cfg = Config::Lan9("fpaxos");
  cfg.params["q2"] = std::to_string(GetParam());
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  auto put = PutAndWait(cluster, client, 1, "q2-sweep", cluster.leader());
  EXPECT_TRUE(put.status.ok()) << "q2=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Q2Values, FPaxosQ2Sweep,
                         ::testing::Values(1, 2, 3, 5, 7, 9));

}  // namespace
}  // namespace paxi
