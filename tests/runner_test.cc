// Benchmark-runner mechanics: window accounting, per-zone samplers, op
// recording, saturation sweeps.

#include "benchmark/runner.h"
#include "gtest/gtest.h"

namespace paxi {
namespace {

BenchOptions QuickOptions() {
  BenchOptions options;
  options.workload = UniformWorkload(50, 0.5);
  options.clients_per_zone = 2;
  options.bootstrap_s = 0.3;
  options.warmup_s = 0.2;
  options.duration_s = 0.5;
  return options;
}

TEST(RunnerTest, ThroughputMatchesCompletedOverWindow) {
  const BenchResult result =
      RunBenchmark(Config::Lan9("paxos"), QuickOptions());
  EXPECT_GT(result.completed, 100u);
  EXPECT_DOUBLE_EQ(result.throughput,
                   static_cast<double>(result.completed) / 0.5);
  EXPECT_EQ(result.errors, 0u);
}

TEST(RunnerTest, LatencySamplesMatchCompletedCount) {
  const BenchResult result =
      RunBenchmark(Config::Lan9("paxos"), QuickOptions());
  EXPECT_EQ(result.latency_ms.count(), result.completed);
  EXPECT_GT(result.MeanLatencyMs(), 0.0);
  EXPECT_GE(result.P99LatencyMs(), result.MedianLatencyMs());
}

TEST(RunnerTest, PerZoneSamplersCoverClientZones) {
  BenchOptions options = QuickOptions();
  options.client_zones = {1, 3};
  const BenchResult result =
      RunBenchmark(Config::LanGrid3x3("wpaxos"), options);
  EXPECT_TRUE(result.zone_latency_ms.count(1));
  EXPECT_TRUE(result.zone_latency_ms.count(3));
  EXPECT_FALSE(result.zone_latency_ms.count(2));
  std::size_t total = 0;
  for (const auto& [zone, sampler] : result.zone_latency_ms) {
    (void)zone;
    total += sampler.count();
  }
  EXPECT_EQ(total, result.completed);
}

TEST(RunnerTest, OpRecordingIncludesWarmup) {
  BenchOptions options = QuickOptions();
  options.record_ops = true;
  const BenchResult result =
      RunBenchmark(Config::Lan9("paxos"), options);
  // Ops cover warmup + window, so strictly more than the measured count.
  EXPECT_GT(result.ops.size(), result.completed);
  for (const OpRecord& op : result.ops) {
    EXPECT_LE(op.invoke, op.response);
  }
}

TEST(RunnerTest, NodeMessageCountersExposed) {
  const BenchResult result =
      RunBenchmark(Config::Lan9("paxos"), QuickOptions());
  ASSERT_EQ(result.node_messages.size(), 9u);
  std::size_t total = 0;
  for (const auto& [id, count] : result.node_messages) {
    (void)id;
    total += count;
  }
  EXPECT_GT(total, result.completed * 5);  // ~2N messages per round
}

TEST(RunnerTest, MoreClientsMoreThroughputBelowSaturation) {
  const auto points =
      SaturationSweep(Config::Lan9("paxos"), QuickOptions(), {1, 4, 16});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].throughput, points[1].throughput);
  EXPECT_LT(points[1].throughput, points[2].throughput);
  // Latency grows with offered load.
  EXPECT_LE(points[0].mean_latency_ms, points[2].mean_latency_ms);
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  const BenchResult a = RunBenchmark(Config::Lan9("paxos"), QuickOptions());
  const BenchResult b = RunBenchmark(Config::Lan9("paxos"), QuickOptions());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.MeanLatencyMs(), b.MeanLatencyMs());
}

TEST(RunnerTest, SeedChangesRun) {
  Config cfg = Config::Lan9("paxos");
  const BenchResult a = RunBenchmark(cfg, QuickOptions());
  cfg.seed = 999;
  const BenchResult b = RunBenchmark(cfg, QuickOptions());
  // Same workload shape, different sample path.
  EXPECT_NE(a.MeanLatencyMs(), b.MeanLatencyMs());
}

}  // namespace
}  // namespace paxi
