#include "benchmark/runner.h"
#include "checker/consensus.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "protocols/mencius/mencius.h"
#include "test_util.h"

namespace paxi {
namespace {

MenciusReplica* Replica(Cluster& cluster, NodeId id) {
  auto* r = dynamic_cast<MenciusReplica*>(cluster.node(id));
  EXPECT_NE(r, nullptr);
  return r;
}

TEST(MenciusTest, AnyServerCommitsInItsOwnSlots) {
  Cluster cluster(Config::Lan9("mencius"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  for (int n = 1; n <= 9; n += 2) {
    auto put = PutAndWait(cluster, client, n, "m" + std::to_string(n),
                          NodeId{1, n});
    ASSERT_TRUE(put.status.ok()) << "server 1." << n;
  }
  auto get = GetAndWait(cluster, client, 5, NodeId{1, 2});
  ASSERT_TRUE(get.status.ok());
  EXPECT_EQ(get.value, "m5");
}

TEST(MenciusTest, SkipsKeepTheLogMovingWithOneActiveServer) {
  // Only server 1.1 proposes; the other 8 servers' slots must be skipped
  // (timer-driven) or execution would stall after slot 0.
  Cluster cluster(Config::Lan9("mencius"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(PutAndWait(cluster, client, 1, "s" + std::to_string(i),
                           NodeId{1, 1})
                    .status.ok())
        << i;
  }
  cluster.RunFor(kSecond);
  std::size_t skips = 0;
  for (const NodeId& id : cluster.nodes()) {
    skips += Replica(cluster, id)->skips_sent();
  }
  EXPECT_GT(skips, 0u);
  EXPECT_GE(Replica(cluster, {1, 1})->executed_up_to(), 20 * 9 - 9);
}

TEST(MenciusTest, RotationInterleavesProposers) {
  Cluster cluster(Config::Lan9("mencius"));
  Bootstrap(cluster);
  Client* c1 = cluster.NewClient(1);
  Client* c2 = cluster.NewClient(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        PutAndWait(cluster, c1, 1, "a" + std::to_string(i), NodeId{1, 1})
            .status.ok());
    ASSERT_TRUE(
        PutAndWait(cluster, c2, 1, "b" + std::to_string(i), NodeId{1, 4})
            .status.ok());
  }
  // Sequential issue order implies a deterministic total order: the store
  // must reflect the last write.
  auto get = GetAndWait(cluster, c1, 1, NodeId{1, 7});
  EXPECT_EQ(get.value, "b9");
}

TEST(MenciusTest, AllReplicasExecuteTheSameOrder) {
  Config cfg = Config::Lan9("mencius");
  BenchOptions options;
  options.workload = UniformWorkload(20, 0.8);
  options.clients_per_zone = 5;
  options.duration_s = 1.0;
  options.warmup_s = 0.3;
  Cluster cluster(cfg);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  ASSERT_GT(result.completed, 200u);
  EXPECT_EQ(result.errors, 0u);
  cluster.RunFor(kSecond);
  std::vector<Key> keys;
  for (Key k = 0; k < 20; ++k) keys.push_back(k);
  ConsensusChecker consensus;
  const auto violations = consensus.Check(cluster, keys);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " divergences, first on key "
      << (violations.empty() ? 0 : violations[0].key);
}

TEST(MenciusTest, LinearizableUnderLoad) {
  Config cfg = Config::Lan9("mencius");
  BenchOptions options;
  options.workload = UniformWorkload(15, 0.5);
  options.clients_per_zone = 6;
  options.duration_s = 1.0;
  options.warmup_s = 0.3;
  options.record_ops = true;
  const BenchResult result = RunBenchmark(cfg, options);
  ASSERT_GT(result.completed, 200u);
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

TEST(MenciusTest, BalancesLoadAcrossReplicas) {
  // Mencius's LAN value is balance, not peak throughput: the all-to-all
  // learner pattern costs ~N^2 messages per round but spreads them evenly,
  // where Paxos concentrates ~N+2 on one leader (Mao et al. §1).
  BenchOptions options;
  options.workload = UniformWorkload(1000, 0.5);
  options.clients_per_zone = 30;
  options.duration_s = 1.0;
  options.warmup_s = 0.3;
  const BenchResult paxos = RunBenchmark(Config::Lan9("paxos"), options);
  const BenchResult mencius = RunBenchmark(Config::Lan9("mencius"), options);
  // Same order of magnitude of throughput...
  EXPECT_GT(mencius.throughput, paxos.throughput * 0.3);
  // ...with the busiest/least-busy replica ratio near 1 for Mencius and
  // heavily skewed for Paxos.
  auto skew = [](const BenchResult& r) {
    std::size_t hi = 0, lo = SIZE_MAX;
    for (const auto& [id, msgs] : r.node_messages) {
      (void)id;
      hi = std::max(hi, msgs);
      lo = std::min(lo, msgs);
    }
    return static_cast<double>(hi) / static_cast<double>(std::max<std::size_t>(lo, 1));
  };
  EXPECT_LT(skew(mencius), 2.0);
  EXPECT_GT(skew(paxos), 3.0);
}

TEST(MenciusTest, WanMultiSiteActivityBeatsRemoteLeader) {
  // The WAN story (Mao et al.): with every site proposing, commands
  // commit with the local server's majority round instead of detouring
  // through a remote fixed leader. (With a single active site, Mencius's
  // known "delayed commit" cost applies: execution waits on the farthest
  // site's piggybacked skip.)
  BenchOptions options;
  options.workload = UniformWorkload(1000, 1.0);
  options.clients_per_zone = 2;  // all five regions active
  options.duration_s = 5.0;
  options.warmup_s = 1.0;
  Config paxos = Config::Wan5("paxos", 1);
  paxos.params["leader"] = "2.1";  // Ohio leader
  Config mencius = Config::Wan5("mencius", 1);
  const BenchResult p = RunBenchmark(paxos, options);
  const BenchResult m = RunBenchmark(mencius, options);
  ASSERT_GT(p.completed, 100u);
  ASSERT_GT(m.completed, 100u);
  // Japan under Paxos pays JP->OH plus OH's quorum (~205 ms); under
  // Mencius it pays its own majority round (~160 ms).
  const double paxos_jp = p.zone_latency_ms.at(5).mean();
  const double mencius_jp = m.zone_latency_ms.at(5).mean();
  EXPECT_LT(mencius_jp, paxos_jp);
}

}  // namespace
}  // namespace paxi
