#include "benchmark/runner.h"
#include "checker/consensus.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "protocols/raft/raft.h"
#include "test_util.h"

namespace paxi {
namespace {

TEST(RaftTest, BootstrapElection) {
  Cluster cluster(Config::Lan9("raft"));
  Bootstrap(cluster);
  auto* leader = dynamic_cast<RaftReplica*>(cluster.node({1, 1}));
  ASSERT_NE(leader, nullptr);
  EXPECT_TRUE(leader->IsLeader());
  EXPECT_GE(leader->term(), 1);
}

TEST(RaftTest, PutThenGet) {
  Cluster cluster(Config::Lan9("raft"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 3, "raft-v", cluster.leader()).status.ok());
  auto get = GetAndWait(cluster, client, 3, cluster.leader());
  EXPECT_EQ(get.value, "raft-v");
}

TEST(RaftTest, ReplicatesToFollowers) {
  Cluster cluster(Config::Lan9("raft"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  for (int i = 0; i < 10; ++i) {
    PutAndWait(cluster, client, i, "r" + std::to_string(i), cluster.leader());
  }
  cluster.RunFor(kSecond);  // heartbeats carry commit index
  for (const NodeId& id : cluster.nodes()) {
    auto* replica = dynamic_cast<RaftReplica*>(cluster.node(id));
    EXPECT_GE(replica->commit_index(), 10) << id.ToString();
    EXPECT_EQ(replica->store().Get(4).value(), "r4") << id.ToString();
  }
}

TEST(RaftTest, LeaderCrashElectsNewLeaderAndServes) {
  Config cfg = Config::Lan9("raft");
  cfg.params["election_timeout_ms"] = "150";
  cfg.params["heartbeat_ms"] = "40";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "pre-crash", cluster.leader()).status.ok());

  cluster.CrashNode({1, 1}, 20 * kSecond);
  cluster.RunFor(3 * kSecond);

  NodeId new_leader = NodeId::Invalid();
  for (const NodeId& id : cluster.nodes()) {
    auto* replica = dynamic_cast<RaftReplica*>(cluster.node(id));
    if (replica->IsLeader() && !replica->IsCrashed()) new_leader = id;
  }
  ASSERT_TRUE(new_leader.valid());
  auto put = PutAndWait(cluster, client, 2, "post-crash", new_leader);
  ASSERT_TRUE(put.status.ok());
  // The committed pre-crash entry survives the leader change.
  auto get = GetAndWait(cluster, client, 1, new_leader);
  EXPECT_EQ(get.value, "pre-crash");
}

TEST(RaftTest, RepairsLaggingFollowerLog) {
  Cluster cluster(Config::Lan9("raft"));
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  // Follower 1.9 misses a batch of appends...
  cluster.transport().Drop({1, 1}, {1, 9}, 2 * kSecond);
  for (int i = 0; i < 10; ++i) {
    PutAndWait(cluster, client, i, "x" + std::to_string(i), cluster.leader());
  }
  // ...then heals; heartbeat-driven repair must backfill its log.
  cluster.RunFor(5 * kSecond);
  auto* lagger = dynamic_cast<RaftReplica*>(cluster.node({1, 9}));
  EXPECT_GE(lagger->commit_index(), 10);
  EXPECT_EQ(lagger->store().Get(9).value(), "x9");
}

TEST(RaftTest, LinearizableAndConsistentUnderLoad) {
  Config cfg = Config::Lan9("raft");
  BenchOptions options;
  options.workload = UniformWorkload(30, 0.5);
  options.clients_per_zone = 6;
  options.duration_s = 1.0;
  options.record_ops = true;

  Cluster cluster(cfg);
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();
  EXPECT_EQ(result.errors, 0u);

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  EXPECT_TRUE(lin.Check().empty());

  cluster.RunFor(kSecond);
  std::vector<Key> keys;
  for (Key k = 0; k < 30; ++k) keys.push_back(k);
  ConsensusChecker consensus;
  EXPECT_TRUE(consensus.Check(cluster, keys).empty());
}

TEST(RaftTest, HttpOverheadRaisesLatencyNotThroughputOrder) {
  // Fig. 7's shape: etcd-style Raft has visibly higher latency than Paxos
  // below saturation, but the same order of magnitude max throughput.
  BenchOptions options;
  options.workload = UniformWorkload(100, 0.5);
  options.clients_per_zone = 2;
  options.duration_s = 1.0;

  const BenchResult paxos = RunBenchmark(Config::Lan9("paxos"), options);
  const BenchResult raft = RunBenchmark(Config::Lan9("raft"), options);
  ASSERT_GT(paxos.completed, 100u);
  ASSERT_GT(raft.completed, 100u);
  EXPECT_GT(raft.MeanLatencyMs(), paxos.MeanLatencyMs());
}

}  // namespace
}  // namespace paxi
