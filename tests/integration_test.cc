#include <string>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "gtest/gtest.h"
#include "model/formulas.h"
#include "model/protocol_model.h"
#include "test_util.h"

namespace paxi {
namespace {

// Every protocol, one harness: the Paxi promise of a leveled playground.
// Each protocol runs the same uniform workload in its paper deployment
// and must (a) make progress, (b) produce zero anomalous reads.
struct ProtocolCase {
  std::string name;
  bool grid;  ///< 3x3 grid (multi-leader) vs 1x9 flat deployment.
};

class EveryProtocol : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(EveryProtocol, ServesLinearizableTraffic) {
  const auto& param = GetParam();
  Config cfg = param.grid ? Config::LanGrid3x3(param.name)
                          : Config::Lan9(param.name);
  BenchOptions options;
  options.workload = UniformWorkload(/*keys=*/30, /*write_ratio=*/0.5);
  options.clients_per_zone = param.grid ? 2 : 4;
  options.duration_s = 1.0;
  options.warmup_s = 0.5;
  options.record_ops = true;

  const BenchResult result = RunBenchmark(cfg, options);
  EXPECT_GT(result.completed, 100u) << param.name;
  EXPECT_EQ(result.errors, 0u) << param.name;

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << param.name << ": " << anomalies.size() << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, EveryProtocol,
    ::testing::Values(ProtocolCase{"paxos", false},
                      ProtocolCase{"fpaxos", false},
                      ProtocolCase{"raft", false},
                      ProtocolCase{"mencius", false},
                      ProtocolCase{"epaxos", false},
                      ProtocolCase{"wpaxos", true},
                      ProtocolCase{"wankeeper", true},
                      ProtocolCase{"vpaxos", true}),
    [](const ::testing::TestParamInfo<ProtocolCase>& info) {
      return info.param.name;
    });

// §1.2: "in multi-leader protocols most requests do not experience any
// disruption in availability, as the failed leader is not in their
// critical path" — while Paxos stalls entirely until re-election.
TEST(AvailabilityTest, WPaxosZonesSurviveRemoteLeaderCrash) {
  Cluster cluster(Config::LanGrid3x3("wpaxos"));
  Bootstrap(cluster);
  Client* c2 = cluster.NewClient(2);
  ASSERT_TRUE(PutAndWait(cluster, c2, 100, "ok", NodeId{2, 1}).status.ok());

  // Crash zone 1's leader; zone 2's objects are unaffected.
  cluster.CrashNode({1, 1}, 10 * kSecond);
  auto put = PutAndWait(cluster, c2, 100, "still-ok", NodeId{2, 1});
  EXPECT_TRUE(put.status.ok());
  EXPECT_LT(ToMillis(put.latency), 100.0);  // no disruption
}

TEST(AvailabilityTest, PaxosStallsUntilReElection) {
  Config cfg = Config::Lan9("paxos");
  cfg.params["election_timeout_ms"] = "400";
  Cluster cluster(cfg);
  Bootstrap(cluster);
  Client* client = cluster.NewClient(1);
  ASSERT_TRUE(
      PutAndWait(cluster, client, 1, "pre", cluster.leader()).status.ok());

  cluster.CrashNode(cluster.leader(), 30 * kSecond);
  auto put = PutAndWait(cluster, client, 1, "post", cluster.leader());
  // The request eventually succeeds (client retry + new leader), but only
  // after a visible unavailability window.
  EXPECT_TRUE(put.status.ok()) << put.status.ToString();
  EXPECT_GT(ToMillis(put.latency), 300.0);
  EXPECT_GT(put.attempts, 1);
}

// Cross-validation (§5.1): the analytic model and the framework agree on
// the single-leader saturation point within modeling error.
TEST(CrossValidationTest, PaxosModelMatchesExperiment) {
  BenchOptions options;
  options.workload = UniformWorkload(1000, 0.5);
  options.duration_s = 1.0;
  options.warmup_s = 0.3;
  // Saturate with many closed-loop clients.
  options.clients_per_zone = 60;
  const BenchResult result = RunBenchmark(Config::Lan9("paxos"), options);

  model::ModelEnv env;
  env.topology = Topology::Lan(1);
  env.zones = 1;
  env.nodes_per_zone = 9;
  model::PaxosModel model(env, NodeId{1, 1});

  EXPECT_GT(result.throughput, model.MaxThroughput() * 0.7);
  EXPECT_LT(result.throughput, model.MaxThroughput() * 1.15);
}

// The §6.1 capacity story end-to-end: measured max throughput ordering
// matches the load formula ordering (WPaxos < Paxos load => WPaxos >
// Paxos capacity).
TEST(CrossValidationTest, LoadFormulaPredictsThroughputOrdering) {
  BenchOptions options;
  options.workload = UniformWorkload(1000, 0.5);
  options.duration_s = 1.0;
  options.warmup_s = 0.3;
  options.clients_per_zone = 40;

  const BenchResult paxos = RunBenchmark(Config::Lan9("paxos"), options);
  options.clients_per_zone = 14;  // 3 zones x 14 ~ same offered load
  const BenchResult wpaxos =
      RunBenchmark(Config::LanGrid3x3("wpaxos"), options);

  ASSERT_LT(model::LoadWPaxos(9, 3), model::LoadPaxos(9));
  EXPECT_GT(wpaxos.throughput, paxos.throughput);
}

}  // namespace
}  // namespace paxi
