// Durable-storage integration tests: every protocol must survive
// crash-mid-sync, torn-write, and media-corruption restarts on a durable
// cluster (param "durable") with linearizability and the fail-fast
// invariant audits green — the storage half of the robustness story. Also
// covers the slow-disk fault, WAL recovery telemetry, and the hierarchical
// protocols' control-state replay (token caches, ownership maps).

#include <cstdlib>
#include <string>
#include <vector>

#include "benchmark/runner.h"
#include "checker/linearizability.h"
#include "fault/nemesis.h"
#include "fault/schedule.h"
#include "fault/telemetry.h"
#include "gtest/gtest.h"
#include "sim/auditor.h"
#include "store/wal.h"
#include "test_util.h"

namespace paxi {
namespace {

/// PAXI_AUDIT=1 for the lifetime of one test: every Cluster self-checks
/// ballot monotonicity and per-slot agreement after every event.
class ScopedAudit {
 public:
  ScopedAudit() { setenv("PAXI_AUDIT", "1", 1); }
  ~ScopedAudit() { unsetenv("PAXI_AUDIT"); }
};

Config DurableConfig(const std::string& protocol, bool grid) {
  Config cfg = grid ? Config::LanGrid3x3(protocol) : Config::Lan9(protocol);
  if (!grid) cfg.nodes_per_zone = 5;
  cfg.params["durable"] = "1";
  cfg.params["election_timeout_ms"] = "250";
  cfg.params["heartbeat_ms"] = "50";
  cfg.client_timeout = 500 * kMillisecond;
  return cfg;
}

// ---------------------------------------------------------------------------
// Storage-fault recovery matrix: 8 protocols x 3 storage faults.
// ---------------------------------------------------------------------------

enum class StorageFault { kCrashMidSync, kTornWrite, kBitFlip };

struct DurableCase {
  std::string protocol;
  /// Crash/torn victims: the leader for the single-leader protocols (the
  /// worst case — its unsynced tail holds in-flight proposals), a group
  /// follower for the grid protocols whose zone leadership is fixed.
  /// Bit-flip victims are always followers: corruption is partial state
  /// loss, and the realistic recovery path is leader-driven re-fill.
  NodeId victim;
  bool grid = false;
  StorageFault fault = StorageFault::kCrashMidSync;
  const char* name = "";
};

class DurableRecoveryTest : public ::testing::TestWithParam<DurableCase> {};

TEST_P(DurableRecoveryTest, SurvivesStorageFault) {
  const DurableCase& param = GetParam();
  ScopedAudit audit;
  Config cfg = DurableConfig(param.protocol, param.grid);

  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.durable());
  AvailabilityTracker tracker(100 * kMillisecond);
  FaultSchedule schedule;
  const Time downtime = 400 * kMillisecond;
  FaultAction action = FaultAction::CrashMidSync(param.victim, downtime);
  switch (param.fault) {
    case StorageFault::kCrashMidSync:
      break;
    case StorageFault::kTornWrite:
      action = FaultAction::TornWrite(param.victim, downtime);
      break;
    case StorageFault::kBitFlip:
      action = FaultAction::BitFlip(param.victim, downtime);
      break;
  }
  schedule.events.push_back(FaultEvent{1500 * kMillisecond, action});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_EQ(nemesis.executed(), 1u);
  EXPECT_GT(result.completed, 100u) << param.protocol;

  // Traffic resumed after the restart.
  const auto& timeline = tracker.timeline();
  ASSERT_GE(timeline.size(), 5u);
  std::size_t tail = 0;
  for (std::size_t i = timeline.size() - 5; i < timeline.size(); ++i) {
    tail += timeline[i].completed;
  }
  EXPECT_GT(tail, 0u) << param.protocol << ": no traffic after recovery";
  EXPECT_GE(tracker.MaxTimeToRecovery(), 0) << param.protocol;

  // The victim really went through WAL replay, and the durable medium saw
  // real group-commit traffic.
  NodeDisk* disk = cluster.disk(param.victim);
  ASSERT_NE(disk, nullptr);
  EXPECT_GE(disk->stats().recoveries, 1u);
  EXPECT_GT(disk->stats().sync_count, 0u);
  EXPECT_GE(disk->stats().MeanGroupCommit(), 1.0);

  // The runner sampled per-node storage gauges into the timeline, and
  // they surface in the JSON report.
  EXPECT_FALSE(tracker.disk_gauges().empty()) << param.protocol;
  const auto& last_gauge = tracker.disk_gauges().back();
  EXPECT_GT(last_gauge.sync_count, 0u);
  EXPECT_GT(last_gauge.bytes_synced, 0u);
  EXPECT_NE(tracker.ToJson().find("\"disk_gauges\""), std::string::npos);

  ASSERT_NE(cluster.auditor(), nullptr);
  const auto& violations = cluster.auditor()->violations();
  EXPECT_TRUE(violations.empty())
      << param.protocol << ": " << violations.size()
      << " invariant violations, first: "
      << (violations.empty() ? "" : violations[0]);

  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << param.protocol << ": " << anomalies.size()
      << " anomalies, first: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(
    StorageFaults, DurableRecoveryTest,
    ::testing::Values(
        // Crash mid-sync: the in-flight group commit never completes; the
        // unsynced tail is lost cleanly at the durable frontier.
        DurableCase{"paxos", NodeId{1, 1}, false, StorageFault::kCrashMidSync,
                    "paxos_crash_mid_sync"},
        DurableCase{"fpaxos", NodeId{1, 1}, false, StorageFault::kCrashMidSync,
                    "fpaxos_crash_mid_sync"},
        DurableCase{"raft", NodeId{1, 1}, false, StorageFault::kCrashMidSync,
                    "raft_crash_mid_sync"},
        DurableCase{"mencius", NodeId{1, 2}, false,
                    StorageFault::kCrashMidSync, "mencius_crash_mid_sync"},
        DurableCase{"epaxos", NodeId{1, 2}, false, StorageFault::kCrashMidSync,
                    "epaxos_crash_mid_sync"},
        DurableCase{"wpaxos", NodeId{1, 2}, true, StorageFault::kCrashMidSync,
                    "wpaxos_crash_mid_sync"},
        DurableCase{"wankeeper", NodeId{1, 2}, true,
                    StorageFault::kCrashMidSync, "wankeeper_crash_mid_sync"},
        DurableCase{"vpaxos", NodeId{1, 2}, true, StorageFault::kCrashMidSync,
                    "vpaxos_crash_mid_sync"},
        // Torn write: a prefix of the in-flight group survives, ending
        // mid-record; recovery must cut the torn frame.
        DurableCase{"paxos", NodeId{1, 1}, false, StorageFault::kTornWrite,
                    "paxos_torn_write"},
        DurableCase{"fpaxos", NodeId{1, 1}, false, StorageFault::kTornWrite,
                    "fpaxos_torn_write"},
        DurableCase{"raft", NodeId{1, 1}, false, StorageFault::kTornWrite,
                    "raft_torn_write"},
        DurableCase{"mencius", NodeId{1, 2}, false, StorageFault::kTornWrite,
                    "mencius_torn_write"},
        DurableCase{"epaxos", NodeId{1, 2}, false, StorageFault::kTornWrite,
                    "epaxos_torn_write"},
        DurableCase{"wpaxos", NodeId{1, 2}, true, StorageFault::kTornWrite,
                    "wpaxos_torn_write"},
        DurableCase{"wankeeper", NodeId{1, 2}, true, StorageFault::kTornWrite,
                    "wankeeper_torn_write"},
        DurableCase{"vpaxos", NodeId{1, 2}, true, StorageFault::kTornWrite,
                    "vpaxos_torn_write"},
        // Bit flip: one durable byte corrupted, then a durable restart —
        // recovery truncates at the bad checksum and the leader's normal
        // catch-up machinery re-fills what the victim forgot.
        DurableCase{"paxos", NodeId{1, 3}, false, StorageFault::kBitFlip,
                    "paxos_bit_flip"},
        DurableCase{"fpaxos", NodeId{1, 3}, false, StorageFault::kBitFlip,
                    "fpaxos_bit_flip"},
        DurableCase{"raft", NodeId{1, 3}, false, StorageFault::kBitFlip,
                    "raft_bit_flip"},
        DurableCase{"mencius", NodeId{1, 2}, false, StorageFault::kBitFlip,
                    "mencius_bit_flip"},
        DurableCase{"epaxos", NodeId{1, 2}, false, StorageFault::kBitFlip,
                    "epaxos_bit_flip"},
        DurableCase{"wpaxos", NodeId{1, 2}, true, StorageFault::kBitFlip,
                    "wpaxos_bit_flip"},
        DurableCase{"wankeeper", NodeId{1, 2}, true, StorageFault::kBitFlip,
                    "wankeeper_bit_flip"},
        DurableCase{"vpaxos", NodeId{1, 2}, true, StorageFault::kBitFlip,
                    "vpaxos_bit_flip"}),
    [](const ::testing::TestParamInfo<DurableCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Slow disk: fsyncs 20x slower on the leader throttle throughput but
// break nothing; service recovers when the fault lifts.
// ---------------------------------------------------------------------------

TEST(DurableFaultTest, SlowDiskThrottlesButStaysSafe) {
  ScopedAudit audit;
  Config cfg = DurableConfig("paxos", /*grid=*/false);
  Cluster cluster(cfg);
  AvailabilityTracker tracker(100 * kMillisecond);
  FaultSchedule schedule;
  schedule.events.push_back(FaultEvent{
      1500 * kMillisecond,
      FaultAction::SlowDisk(NodeId{1, 1}, 20.0, 800 * kMillisecond)});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  options.workload = UniformWorkload(25, 0.5);
  options.clients_per_zone = 4;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.0;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 100u);
  // The fault lifted: the disk runs at full speed again.
  EXPECT_DOUBLE_EQ(cluster.disk(NodeId{1, 1})->slow_factor(), 1.0);

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  EXPECT_TRUE(lin.Check().empty());
}

// ---------------------------------------------------------------------------
// Hierarchical control-state replay: a zone leader that held tokens /
// owned objects crashes and must re-serve its keys after WAL recovery
// without splitting any commit. (The group-log replay is covered by the
// matrix above; this pins the level-2 state specifically, by restarting a
// non-master *zone leader* — the node whose token cache and ownership
// view live outside the group log.)
// ---------------------------------------------------------------------------

class ZoneLeaderRestartTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZoneLeaderRestartTest, ZoneLeaderRecoversControlState) {
  ScopedAudit audit;
  Config cfg = DurableConfig(GetParam(), /*grid=*/true);
  Cluster cluster(cfg);
  AvailabilityTracker tracker(100 * kMillisecond);
  FaultSchedule schedule;
  // Zone 2's leader: holds tokens (wankeeper) / owns migrated objects
  // (vpaxos) for zone-2-local keys by the time the fault fires.
  schedule.events.push_back(FaultEvent{
      1800 * kMillisecond,
      FaultAction::CrashMidSync(NodeId{2, 1}, 400 * kMillisecond)});
  Nemesis nemesis(&cluster, schedule, &tracker);
  nemesis.Arm();

  BenchOptions options;
  // Zone-local skew gives zone 2 sustained ownership of its keys, so the
  // crash hits a leader with real control state to recover.
  options.workload = LocalityWorkload(/*zones=*/3, /*keys=*/300,
                                      /*sigma=*/20.0);
  options.clients_per_zone = 3;
  options.bootstrap_s = 0.5;
  options.warmup_s = 0.0;
  options.duration_s = 4.5;
  options.record_ops = true;
  options.availability = &tracker;
  BenchRunner runner(&cluster, options);
  const BenchResult result = runner.Run();

  EXPECT_GT(result.completed, 100u);
  EXPECT_GE(cluster.disk(NodeId{2, 1})->stats().recoveries, 1u);

  // Traffic resumed after recovery.
  const auto& timeline = tracker.timeline();
  ASSERT_GE(timeline.size(), 5u);
  std::size_t tail = 0;
  for (std::size_t i = timeline.size() - 5; i < timeline.size(); ++i) {
    tail += timeline[i].completed;
  }
  EXPECT_GT(tail, 0u) << GetParam() << ": no traffic after recovery";

  ASSERT_NE(cluster.auditor(), nullptr);
  const auto& violations = cluster.auditor()->violations();
  EXPECT_TRUE(violations.empty())
      << GetParam() << ": first violation: "
      << (violations.empty() ? "" : violations[0]);
  LinearizabilityChecker lin;
  lin.AddAll(result.ops);
  const auto anomalies = lin.Check();
  EXPECT_TRUE(anomalies.empty())
      << GetParam() << ": first anomaly: "
      << (anomalies.empty() ? "" : anomalies[0].reason);
}

INSTANTIATE_TEST_SUITE_P(Hierarchical, ZoneLeaderRestartTest,
                         ::testing::Values("wankeeper", "vpaxos", "wpaxos"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---------------------------------------------------------------------------
// Basics: the durable switch defaults off, and a durable restart without
// traffic round-trips cleanly.
// ---------------------------------------------------------------------------

TEST(DurableClusterTest, InMemoryByDefault) {
  Cluster cluster(Config::Lan9("paxos"));
  EXPECT_FALSE(cluster.durable());
  EXPECT_EQ(cluster.disk(NodeId{1, 1}), nullptr);
}

TEST(DurableClusterTest, DurableRestartPreservesAcknowledgedWrites) {
  ScopedAudit audit;
  Config cfg = DurableConfig("paxos", /*grid=*/false);
  Cluster cluster(cfg);
  Client* client = cluster.NewClient(1);
  Bootstrap(cluster);

  const Client::Reply put =
      PutAndWait(cluster, client, 7, "before-crash", NodeId{1, 1});
  ASSERT_TRUE(put.status.ok());

  // Restart every replica (staggered, majority always up): the value must
  // be re-served from recovered state, not from any live copy.
  for (const NodeId node : cfg.Nodes()) {
    cluster.RestartNode(node, 50 * kMillisecond,
                        Cluster::RestartMode::kDurable);
    cluster.RunFor(200 * kMillisecond);
    EXPECT_GE(cluster.disk(node)->stats().recoveries, 1u) << node.ToString();
  }
  cluster.RunFor(kSecond);

  const Client::Reply get = GetAndWait(cluster, client, 7, NodeId{1, 1});
  ASSERT_TRUE(get.status.ok());
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, "before-crash");
  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty());
}

}  // namespace
}  // namespace paxi
